//! Post-mortem trace queries over a drained flight-recorder log.
//!
//! After a run (or a crash drill) the per-worker, dispatcher and
//! control rings are drained into one [`TraceLog`], merged on the
//! shared logical clock. [`TraceQuery`] then answers the questions a
//! post-mortem actually asks — *what happened to this client*, *what
//! did this shard do*, *when did each offender cross each standing* —
//! without grepping text logs. The e20 drill uses exactly this API to
//! reconstruct every banned client's throttle → quarantine → ban
//! ladder from trace data alone.

use crate::event::{EventKind, TraceEvent};

/// A merged, stamp-ordered event log from every drained ring.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Builds a log from drained ring contents (any order); events are
    /// merged into logical-clock order, which is total across rings
    /// because every recorder shares one clock.
    #[must_use]
    pub fn new(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| e.stamp);
        TraceLog { events }
    }

    /// Every event, stamp-ordered.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events in the log.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the log holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Starts a filtered query.
    #[must_use]
    pub fn query(&self) -> TraceQuery<'_> {
        TraceQuery {
            log: self,
            client: None,
            shard: None,
            kinds: None,
            since: None,
            until: None,
        }
    }

    /// Every client with a [`EventKind::Ban`] event, ascending, deduplicated.
    #[must_use]
    pub fn banned_clients(&self) -> Vec<u64> {
        let mut clients: Vec<u64> = self
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Ban)
            .map(|e| e.client)
            .collect();
        clients.sort_unstable();
        clients.dedup();
        clients
    }

    /// Every standing-relevant event of one client, stamp-ordered —
    /// the client's full history as the control plane saw it.
    #[must_use]
    pub fn client_timeline(&self, client: u64) -> Vec<TraceEvent> {
        self.query().client(client).run()
    }

    /// Reconstructs `client`'s escalation ladder: the throttle,
    /// quarantine and ban crossings in stamp order. `None` when the
    /// client was never banned; a ladder with a missing earlier rung
    /// means the trace is incomplete (control-ring overflow), which the
    /// e20 drill treats as a failure.
    #[must_use]
    pub fn ban_path(&self, client: u64) -> Option<BanPath> {
        let ban = self
            .query()
            .client(client)
            .kind(EventKind::Ban)
            .run()
            .into_iter()
            .next()?;
        let before_ban = |kind: EventKind| {
            self.query()
                .client(client)
                .kind(kind)
                .until(ban.stamp)
                .run()
                .into_iter()
                .next()
        };
        Some(BanPath {
            client,
            throttle: before_ban(EventKind::Throttle),
            quarantine: before_ban(EventKind::Quarantine),
            ban,
        })
    }
}

/// A builder-style filter over a [`TraceLog`]. Every constraint is
/// optional; [`run`](Self::run) returns the matching events in stamp
/// order.
#[derive(Debug, Clone)]
pub struct TraceQuery<'a> {
    log: &'a TraceLog,
    client: Option<u64>,
    shard: Option<u16>,
    kinds: Option<Vec<EventKind>>,
    since: Option<u64>,
    until: Option<u64>,
}

impl TraceQuery<'_> {
    /// Keep only events attributed to `client`.
    #[must_use]
    pub fn client(mut self, client: u64) -> Self {
        self.client = Some(client);
        self
    }

    /// Keep only events concerning `shard`.
    #[must_use]
    pub fn shard(mut self, shard: u16) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Keep only events of `kind`.
    #[must_use]
    pub fn kind(self, kind: EventKind) -> Self {
        self.kinds(&[kind])
    }

    /// Keep only events whose kind is in `kinds`.
    #[must_use]
    pub fn kinds(mut self, kinds: &[EventKind]) -> Self {
        self.kinds = Some(kinds.to_vec());
        self
    }

    /// Keep only events stamped at or after `stamp`.
    #[must_use]
    pub fn since(mut self, stamp: u64) -> Self {
        self.since = Some(stamp);
        self
    }

    /// Keep only events stamped strictly before `stamp`.
    #[must_use]
    pub fn until(mut self, stamp: u64) -> Self {
        self.until = Some(stamp);
        self
    }

    fn matches(&self, event: &TraceEvent) -> bool {
        self.client.is_none_or(|c| event.client == c)
            && self.shard.is_none_or(|s| event.shard == s)
            && self
                .kinds
                .as_ref()
                .is_none_or(|ks| ks.contains(&event.kind))
            && self.since.is_none_or(|s| event.stamp >= s)
            && self.until.is_none_or(|u| event.stamp < u)
    }

    /// The matching events, stamp-ordered.
    #[must_use]
    pub fn run(self) -> Vec<TraceEvent> {
        self.log
            .events
            .iter()
            .filter(|e| self.matches(e))
            .copied()
            .collect()
    }

    /// How many events match.
    #[must_use]
    pub fn count(self) -> usize {
        let query = self;
        query.log.events.iter().filter(|e| query.matches(e)).count()
    }

    /// The matching events bucketed into consecutive stamp windows of
    /// `width` (floored at 1): window `w` covers stamps
    /// `[w*width, (w+1)*width)`, so a stamp landing exactly on a
    /// boundary belongs to the *next* window and logical-clock ties
    /// land in the same window together. Empty windows between the
    /// first and last match are included (count 0) so rates plotted
    /// from the result do not silently skip quiet spans; no matches at
    /// all yields an empty vec.
    #[must_use]
    pub fn windowed(self, width: u64) -> Vec<WindowCounts> {
        let width = width.max(1);
        let query = self;
        let matches: Vec<u64> = query
            .log
            .events
            .iter()
            .filter(|e| query.matches(e))
            .map(|e| e.stamp)
            .collect();
        let (Some(&first), Some(&last)) = (matches.first(), matches.last()) else {
            return Vec::new();
        };
        let first_window = first / width;
        let last_window = last / width;
        let mut windows: Vec<WindowCounts> = (first_window..=last_window)
            .map(|w| WindowCounts {
                start: w * width,
                end: (w + 1) * width,
                count: 0,
            })
            .collect();
        for stamp in matches {
            windows[(stamp / width - first_window) as usize].count += 1;
        }
        windows
    }
}

/// One stamp window of a [`TraceQuery::windowed`] rollup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowCounts {
    /// First stamp the window covers (inclusive).
    pub start: u64,
    /// First stamp past the window (exclusive).
    pub end: u64,
    /// Matching events stamped within `[start, end)`.
    pub count: u64,
}

/// One client's reconstructed escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BanPath {
    /// The banned client.
    pub client: u64,
    /// The first throttle crossing before the ban, when recorded.
    pub throttle: Option<TraceEvent>,
    /// The first quarantine crossing before the ban, when recorded.
    pub quarantine: Option<TraceEvent>,
    /// The ban crossing.
    pub ban: TraceEvent,
}

impl BanPath {
    /// True when every rung of the ladder is present and in logical
    /// order — the completeness the e20 drill asserts for every banned
    /// client.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        match (self.throttle, self.quarantine) {
            (Some(t), Some(q)) => t.stamp < q.stamp && q.stamp < self.ban.stamp,
            _ => false,
        }
    }

    /// A human-readable one-line summary.
    #[must_use]
    pub fn describe(&self) -> String {
        let rung = |event: Option<TraceEvent>| {
            event.map_or("missing".to_string(), |e| format!("@{}", e.stamp))
        };
        format!(
            "client {}: throttle {} -> quarantine {} -> ban @{}",
            self.client,
            rung(self.throttle),
            rung(self.quarantine),
            self.ban.stamp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Source;

    fn control(stamp: u64, kind: EventKind, client: u64) -> TraceEvent {
        TraceEvent {
            stamp,
            kind,
            source: Source::Control,
            shard: 0,
            client,
            detail: 0,
        }
    }

    fn worker(stamp: u64, kind: EventKind, shard: u16, client: u64) -> TraceEvent {
        TraceEvent {
            stamp,
            kind,
            source: Source::Worker(shard),
            shard,
            client,
            detail: 0,
        }
    }

    fn sample_log() -> TraceLog {
        // Deliberately shuffled input: the log must re-merge on stamps.
        TraceLog::new(vec![
            control(50, EventKind::Ban, 7),
            worker(10, EventKind::Submit, 0, 7),
            control(20, EventKind::Throttle, 7),
            worker(15, EventKind::Submit, 1, 3),
            control(35, EventKind::Quarantine, 7),
            worker(40, EventKind::Shed, 0, 7),
            worker(60, EventKind::Rewind, 1, 3),
            control(70, EventKind::Throttle, 3),
        ])
    }

    #[test]
    fn log_merges_into_stamp_order() {
        let log = sample_log();
        let stamps: Vec<u64> = log.events().iter().map(|e| e.stamp).collect();
        let mut sorted = stamps.clone();
        sorted.sort_unstable();
        assert_eq!(stamps, sorted);
        assert_eq!(log.len(), 8);
    }

    #[test]
    fn filters_compose() {
        let log = sample_log();
        assert_eq!(log.query().client(7).count(), 5);
        assert_eq!(log.query().client(7).kind(EventKind::Submit).count(), 1);
        assert_eq!(log.query().shard(1).count(), 2);
        assert_eq!(log.query().since(35).until(60).count(), 3);
        assert_eq!(
            log.query()
                .kinds(&[EventKind::Throttle, EventKind::Quarantine, EventKind::Ban])
                .count(),
            4
        );
    }

    #[test]
    fn ban_path_reconstructs_the_full_ladder() {
        let log = sample_log();
        assert_eq!(log.banned_clients(), vec![7]);
        let path = log.ban_path(7).expect("client 7 was banned");
        assert!(path.is_complete(), "{}", path.describe());
        assert_eq!(path.throttle.unwrap().stamp, 20);
        assert_eq!(path.quarantine.unwrap().stamp, 35);
        assert_eq!(path.ban.stamp, 50);
        assert!(path.describe().contains("client 7"));
    }

    #[test]
    fn unbanned_clients_have_no_ban_path() {
        let log = sample_log();
        assert!(log.ban_path(3).is_none(), "throttled but never banned");
        assert!(log.ban_path(999).is_none(), "never seen");
    }

    #[test]
    fn incomplete_ladders_are_detected() {
        // A ban with no recorded quarantine: complete() must be false.
        let log = TraceLog::new(vec![
            control(1, EventKind::Throttle, 9),
            control(5, EventKind::Ban, 9),
        ]);
        let path = log.ban_path(9).unwrap();
        assert!(!path.is_complete());
        assert!(path.describe().contains("missing"));
    }

    #[test]
    fn windowed_rollups_include_empty_windows() {
        // Matches at stamps 10, 15 and 60 with width 10: windows
        // [10,20) [20,30) [30,40) [40,50) [50,60) [60,70) — the four
        // quiet windows in the middle must appear with count 0.
        let log = TraceLog::new(vec![
            worker(10, EventKind::Submit, 0, 1),
            worker(15, EventKind::Submit, 0, 1),
            worker(60, EventKind::Submit, 0, 1),
        ]);
        let windows = log.query().windowed(10);
        assert_eq!(windows.len(), 6);
        let counts: Vec<u64> = windows.iter().map(|w| w.count).collect();
        assert_eq!(counts, vec![2, 0, 0, 0, 0, 1]);
        assert_eq!(windows[0].start, 10);
        assert_eq!(windows[0].end, 20);
        assert_eq!(windows[5].start, 60);
    }

    #[test]
    fn boundary_stamps_belong_to_the_next_window() {
        // Stamp 20 sits exactly on the [10,20)/[20,30) boundary: it
        // must land in the second window, never straddle or double.
        let log = TraceLog::new(vec![
            worker(19, EventKind::Submit, 0, 1),
            worker(20, EventKind::Submit, 0, 1),
        ]);
        let windows = log.query().windowed(10);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].count, 1);
        assert_eq!(windows[1].count, 1);
        assert_eq!(windows[1].start, 20);
        let total: u64 = windows.iter().map(|w| w.count).sum();
        assert_eq!(total, 2, "every match counted exactly once");
    }

    #[test]
    fn logical_clock_ties_share_one_window() {
        // Three events at the same stamp (merged from rings that raced
        // on the shared clock in a crash drill) count together.
        let log = TraceLog::new(vec![
            worker(7, EventKind::Submit, 0, 1),
            worker(7, EventKind::Submit, 1, 2),
            control(7, EventKind::Throttle, 2),
        ]);
        let windows = log.query().windowed(5);
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].count, 3);
        assert_eq!(windows[0].start, 5);
    }

    #[test]
    fn windowed_respects_the_query_filters() {
        let log = sample_log();
        let windows = log.query().client(7).windowed(25);
        let total: u64 = windows.iter().map(|w| w.count).sum();
        assert_eq!(total as usize, log.query().client(7).count());
        // Degenerate width clamps to 1 instead of dividing by zero.
        assert!(!log.query().windowed(0).is_empty());
    }

    #[test]
    fn client_timeline_is_everything_about_one_client() {
        let log = sample_log();
        let timeline = log.client_timeline(7);
        assert_eq!(timeline.len(), 5);
        assert!(timeline.windows(2).all(|w| w[0].stamp <= w[1].stamp));
        assert!(timeline.iter().all(|e| e.client == 7));
    }
}
