//! A minimal, dependency-free JSON tree: deterministic writer and a
//! strict parser.
//!
//! The workspace builds offline (no `serde_json`), yet the telemetry
//! pipeline needs machine-readable artifacts: `TelemetrySnapshot`
//! serialization and the committed `BENCH_runtime.json` the CI
//! regression guard re-reads. This module supplies exactly that —
//! nothing more.
//!
//! **Determinism contract**: objects are [`std::collections::BTreeMap`]s
//! (key-sorted), integers are emitted as integers (never through `f64`,
//! so no 2^53 precision loss), floats are emitted via Rust's shortest
//! round-trip formatting, and the writer inserts no machine-dependent
//! whitespace. Identical trees therefore serialize to byte-identical
//! text — the property the snapshot proptests pin down.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (u64-exact, never via f64).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A finite float (non-finite values serialize as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, key-sorted by construction.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn object() -> Self {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts into an object (panics when `self` is not one — a
    /// construction bug, not a data error).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(map) => {
                map.insert(key.to_string(), value);
            }
            other => panic!("set({key}) on non-object {other:?}"),
        }
        self
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as an f64 (integers widen; `None` otherwise).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            #[allow(clippy::cast_precision_loss)]
            Json::U64(v) => Some(*v as f64),
            #[allow(clippy::cast_precision_loss)]
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a u64 (`None` for anything else).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the committed-artifact format (diff-friendly, byte-deterministic).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Shortest round-trip formatting: deterministic and
                    // re-parses to the identical bits.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (strict: trailing garbage is an
    /// error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(JsonError::at(*pos, format!("expected `{token}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError::at(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(JsonError::at(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::at(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| JsonError::at(*pos, "bad \\u escape"))?;
                        // Surrogates are rejected rather than paired:
                        // the writer never emits them.
                        let c = char::from_u32(hex)
                            .ok_or_else(|| JsonError::at(*pos, "bad \\u code point"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(&byte) => {
                // Copy the full UTF-8 sequence starting here.
                let start = *pos;
                let len = match byte {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = bytes
                    .get(start..start + len)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or_else(|| JsonError::at(start, "invalid UTF-8"))?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at(start, "invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(JsonError::at(start, "expected value"));
    }
    if !is_float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| JsonError::at(start, "invalid number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_output_is_sorted_and_roundtrips() {
        let mut obj = Json::object();
        obj.set("zeta", Json::U64(u64::MAX))
            .set("alpha", Json::F64(0.1))
            .set("mid", Json::Arr(vec![Json::Bool(true), Json::Null]))
            .set("name", Json::Str("a \"quoted\"\nline".into()));
        let text = obj.pretty();
        assert!(text.find("\"alpha\"").unwrap() < text.find("\"zeta\"").unwrap());
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, obj);
    }

    #[test]
    fn u64_values_survive_exactly() {
        let big = u64::MAX - 1;
        let parsed = Json::parse(&format!("{big}")).unwrap();
        assert_eq!(parsed.as_u64(), Some(big));
    }

    #[test]
    fn identical_trees_serialize_identically() {
        let build = || {
            let mut obj = Json::object();
            obj.set("b", Json::F64(1.5)).set("a", Json::I64(-3));
            obj
        };
        assert_eq!(build().pretty(), build().pretty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn floats_roundtrip_via_shortest_form() {
        for v in [0.1f64, 1e-9, 12345.6789, f64::MAX] {
            let text = Json::F64(v).pretty();
            let Json::F64(back) = Json::parse(text.trim()).unwrap() else {
                panic!("not a float: {text}");
            };
            assert!((back - v).abs() <= f64::EPSILON * v.abs());
        }
        assert_eq!(Json::F64(f64::NAN).pretty().trim(), "null");
    }

    #[test]
    fn nested_structures_parse() {
        let text = r#"{"metrics": {"tput": 123.5, "ok": 10}, "tags": ["a", "b"]}"#;
        let parsed = Json::parse(text).unwrap();
        assert_eq!(
            parsed
                .get("metrics")
                .and_then(|m| m.get("ok"))
                .and_then(Json::as_u64),
            Some(10)
        );
        assert_eq!(
            parsed.get("tags").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }
}
