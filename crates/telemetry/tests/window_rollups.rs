//! Properties of the windowed-aggregation layer:
//!
//! * **Incremental == recompute** — for any monotone observation
//!   sequence, the collector's incremental [`WindowBook`] rollup is
//!   identical to a from-scratch recompute over the same observations
//!   ([`recompute_rollup`]), at every query time;
//! * **Collector delta books** — for any frame schedule (including
//!   lost frames), cumulative-total diffing reproduces the true totals
//!   and never undercounts after a loss.

use proptest::prelude::*;
use sdrad_telemetry::{
    recompute_rollup, Collector, DeltaFrame, EventKind, Source, StreamingConfig, TraceEvent,
    WindowBook,
};

/// Deterministic event stream: seeded xorshift over kinds/clients with
/// strictly nondecreasing observation times.
fn observations(seed: u64, count: usize) -> Vec<(u64, TraceEvent)> {
    let mut x = seed | 1;
    let mut now = 0u64;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        now += x % 97; // monotone, gappy arrival times
        let kind = match x % 5 {
            0 => EventKind::Rewind,
            1 => EventKind::Shed,
            2 => EventKind::Park,
            _ => EventKind::Submit,
        };
        #[allow(clippy::cast_possible_truncation)]
        let shard = (x % 3) as u16;
        out.push((
            now,
            TraceEvent {
                stamp: i as u64,
                kind,
                source: Source::Worker(shard),
                shard,
                client: x % 6,
                detail: x % 4,
            },
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The satellite proptest: the incremental collector rollup equals
    /// a from-scratch recompute over the same log, for arbitrary
    /// windows, bucket counts and observation streams — both mid-stream
    /// and at the end.
    #[test]
    fn incremental_rollups_equal_recompute(
        seed in 1u64..u64::MAX,
        count in 1usize..300,
        window_ns in 1u64..5_000,
        buckets in 1usize..24,
    ) {
        let observations = observations(seed, count);
        let mut book = WindowBook::new(window_ns, buckets);
        for (i, (at_ns, event)) in observations.iter().enumerate() {
            book.observe(*at_ns, event);
            // Check at a sprinkling of intermediate points too, so a
            // bucket-recycling bug mid-stream cannot hide behind a
            // correct final answer.
            if i % 50 == 0 {
                prop_assert_eq!(
                    book.rollup(*at_ns),
                    recompute_rollup(window_ns, buckets, &observations[..=i], *at_ns)
                );
            }
        }
        let last = observations.last().unwrap().0;
        for query_at in [last, last + window_ns, last + 10 * window_ns.max(1)] {
            prop_assert_eq!(
                book.rollup(query_at),
                recompute_rollup(window_ns, buckets, &observations, query_at)
            );
        }
    }

    /// Cumulative-total frames reproduce true totals through any loss
    /// pattern: deliver only a seeded subset of frames and the final
    /// aggregate still equals the last shipped total per source.
    #[test]
    fn lost_frames_never_desynchronize_totals(
        seed in 1u64..u64::MAX,
        frames in 1u64..40,
    ) {
        let collector = Collector::new(StreamingConfig::enabled());
        let mut x = seed | 1;
        let mut total = 0u64;
        let mut last_delivered_total = 0u64;
        let mut delivered = 0u64;
        for seq in 0..frames {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            total += x % 100;
            // ~1 in 3 frames is "lost" (never delivered).
            if x % 3 == 0 && seq + 1 != frames {
                continue;
            }
            collector.deliver_at(
                DeltaFrame {
                    source: "worker-0".to_string(),
                    seq,
                    totals: vec![("served".to_string(), total)],
                    events: Vec::new(),
                },
                seq,
            );
            delivered += 1;
            last_delivered_total = total;
        }
        prop_assert_eq!(
            collector.totals().get("served").copied().unwrap_or(0),
            last_delivered_total
        );
        prop_assert_eq!(collector.frames(), delivered);
        prop_assert_eq!(collector.lost_frames() + delivered, frames);
        prop_assert_eq!(collector.regressions(), 0);
    }
}
