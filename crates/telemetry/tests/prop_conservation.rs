//! Properties of the telemetry layer:
//!
//! * **Conservation** — for any interleaving of emits and drains on any
//!   ring size, `emitted == drained + dropped + in_ring`, and after a
//!   final drain nothing remains in the ring;
//! * **Determinism** — the same seeded metric/event stream produces a
//!   byte-identical serialized [`TelemetrySnapshot`];
//! * **Off is silent** — an [`Recorder::Off`] handle emits nothing and
//!   counts nothing, whatever is thrown at it.

use std::sync::Arc;

use proptest::prelude::*;
use sdrad_telemetry::{
    EventKind, LogicalClock, MetricsRegistry, Recorder, RingCounters, Source, TelemetrySnapshot,
    TraceLog, TraceRing,
};

/// Replays a seeded op stream against a ring: even draws emit, odd
/// draws drain one. Returns the ring for post-hoc inspection.
fn replay(seed: u64, ops: usize, capacity: usize) -> Arc<TraceRing> {
    let ring = Arc::new(TraceRing::new(capacity));
    let clock = LogicalClock::new();
    let recorder = Recorder::on(Arc::clone(&ring), clock, Source::Worker(0));
    let mut x = seed | 1;
    for _ in 0..ops {
        // SplitMix-ish scramble: deterministic per seed.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        if x.is_multiple_of(3) {
            let _ = ring.pop();
        } else {
            let kind = EventKind::ALL[(x as usize / 3) % EventKind::ALL.len()];
            recorder.emit(kind, (x >> 8) as u16 % 4, x % 64, x % 1000);
        }
    }
    ring
}

proptest! {
    #[test]
    fn every_interleaving_conserves(
        seed in 0u64..10_000,
        ops in 1usize..2_000,
        capacity in 0usize..512,
    ) {
        let ring = replay(seed, ops, capacity);
        prop_assert!(
            ring.counters().conserves(ring.len()),
            "mid-run: {:?} in_ring={}", ring.counters(), ring.len()
        );
        let tail = ring.drain().len() as u64;
        let counters = ring.counters();
        prop_assert!(counters.conserves(0), "post-drain: {counters:?} tail={tail}");
        prop_assert_eq!(ring.len(), 0, "final drain empties the ring");
        prop_assert_eq!(counters.emitted, counters.drained + counters.dropped);
    }

    #[test]
    fn same_seed_yields_byte_identical_snapshots(
        seed in 0u64..10_000,
        ops in 1usize..1_000,
    ) {
        let build = || {
            let ring = replay(seed, ops, 256);
            let registry = MetricsRegistry::new();
            let submitted = registry.counter("runtime.submitted");
            let depth = registry.gauge("queue.depth");
            let latency = registry.histogram("latency.ok");
            let mut x = seed.wrapping_mul(31) | 1;
            for _ in 0..ops {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                submitted.add(x % 5);
                depth.set(x % 100);
                latency.record(x % 1_000_000);
            }
            let events = ring.drain();
            let mut snapshot = TelemetrySnapshot::from_metrics(registry.read());
            snapshot.add_ring("worker-0", ring.counters(), ring.len());
            snapshot.tally_events(&events);
            snapshot.to_pretty()
        };
        let a = build();
        let b = build();
        prop_assert_eq!(a, b, "same seed must serialize byte-identically");
    }

    #[test]
    fn off_recorder_emits_nothing(
        clients in proptest::collection::vec(0u64..1_000, 1..200),
    ) {
        let recorder = Recorder::default();
        for (i, &client) in clients.iter().enumerate() {
            let kind = EventKind::ALL[i % EventKind::ALL.len()];
            recorder.emit(kind, (i % 7) as u16, client, i as u64);
        }
        prop_assert!(!recorder.is_on());
        prop_assert_eq!(recorder.counters(), RingCounters::default());
    }

    #[test]
    fn drained_logs_reconstruct_emission_order(
        seed in 0u64..10_000,
        emits in 1usize..500,
    ) {
        // Two recorders share one clock into two rings (big enough that
        // nothing drops): the merged log must be stamp-total-ordered
        // with no duplicates and no gaps.
        let clock = LogicalClock::new();
        let worker_ring = Arc::new(TraceRing::new(1024));
        let control_ring = Arc::new(TraceRing::new(1024));
        let worker = Recorder::on(Arc::clone(&worker_ring), clock.clone(), Source::Worker(1));
        let control = Recorder::on(Arc::clone(&control_ring), clock.clone(), Source::Control);
        let mut x = seed | 1;
        for _ in 0..emits {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x % 2 == 0 {
                worker.emit(EventKind::Rewind, 1, x % 16, 0);
            } else {
                control.emit(EventKind::Throttle, 0, x % 16, 0);
            }
        }
        let mut events = worker_ring.drain();
        events.extend(control_ring.drain());
        let log = TraceLog::new(events);
        prop_assert_eq!(log.len(), emits);
        let stamps: Vec<u64> = log.events().iter().map(|e| e.stamp).collect();
        let expected: Vec<u64> = (0..emits as u64).collect();
        prop_assert_eq!(stamps, expected, "shared clock => dense total order");
    }
}
