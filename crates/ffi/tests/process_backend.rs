//! Integration tests for the real subprocess (Sandcrust-style) backend.

use std::process::Command;

use sdrad_ffi::{FfiError, Format, Sandbox};

fn worker_command() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sdrad-ffi-worker"))
}

#[test]
fn process_sandbox_round_trips() {
    let mut sandbox = Sandbox::process(worker_command()).unwrap();
    assert_eq!(sandbox.backend_name(), "process");
    // The local closure is ignored; the worker's `sum` runs.
    let sum: u64 = sandbox
        .invoke("sum", &vec![10u64, 20, 30], |_v: Vec<u64>| unreachable!())
        .unwrap();
    assert_eq!(sum, 60);
}

#[test]
fn process_sandbox_serves_many_requests() {
    let mut sandbox = Sandbox::process(worker_command()).unwrap();
    for i in 0..100u64 {
        let echoed: Vec<u8> = sandbox
            .invoke("echo", &vec![i as u8; 16], |v: Vec<u8>| v)
            .unwrap();
        assert_eq!(echoed, vec![i as u8; 16]);
    }
    assert_eq!(sandbox.stats().invocations, 100);
}

#[test]
fn worker_panic_is_contained_and_worker_survives() {
    let mut sandbox = Sandbox::process(worker_command()).unwrap();
    let err = sandbox
        .invoke("boom", &"detonate".to_string(), |_: String| ())
        .unwrap_err();
    assert!(matches!(err, FfiError::WorkerError(msg) if msg.contains("detonate")));
    // The worker caught the panic per-request; it still serves.
    let sum: u64 = sandbox
        .invoke("sum", &vec![1u64, 2], |_v: Vec<u64>| unreachable!())
        .unwrap();
    assert_eq!(sum, 3);
}

#[test]
fn unknown_function_is_reported() {
    let mut sandbox = Sandbox::process(worker_command()).unwrap();
    let err = sandbox.invoke("no-such-fn", &1u8, |x: u8| x).unwrap_err();
    assert!(matches!(err, FfiError::UnknownFunction(name) if name == "no-such-fn"));
}

#[test]
fn all_formats_cross_the_process_boundary() {
    for format in Format::ALL {
        let mut sandbox = Sandbox::process(worker_command()).unwrap().format(format);
        let echoed: Vec<u8> = sandbox
            .invoke("echo", &vec![1u8, 2, 3], |v: Vec<u8>| v)
            .unwrap();
        assert_eq!(echoed, vec![1, 2, 3], "format {format}");
    }
}

#[test]
fn dead_worker_is_detected_and_respawned() {
    let mut sandbox = Sandbox::process(worker_command()).unwrap();
    // Prove it works once.
    let _: Vec<u8> = sandbox.invoke("echo", &vec![1u8], |v: Vec<u8>| v).unwrap();

    // A worker spawned from `false` dies immediately: simulate by making a
    // sandbox whose worker exits at once.
    let mut dead = Sandbox::process(Command::new("true")).unwrap();
    let err = dead.invoke("echo", &vec![1u8], |v: Vec<u8>| v).unwrap_err();
    assert!(
        err.is_recovered_fault(),
        "worker death is a recovered fault"
    );
    assert_eq!(dead.stats().recovered_faults, 1);
}
