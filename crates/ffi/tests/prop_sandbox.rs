//! Property tests: the sandbox is semantically transparent for pure
//! functions, across backends and formats.

use proptest::prelude::*;
use sdrad_ffi::{Format, Sandbox};
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize, Debug, Clone, PartialEq)]
struct Input {
    numbers: Vec<i64>,
    text: String,
    flag: bool,
}

fn arb_input() -> impl Strategy<Value = Input> {
    (
        proptest::collection::vec(any::<i64>(), 0..40),
        "[ -~]{0,60}",
        any::<bool>(),
    )
        .prop_map(|(numbers, text, flag)| Input {
            numbers,
            text,
            flag,
        })
}

/// The pure function under sandbox: deterministic digest of the input.
fn digest(input: Input) -> (i64, usize, bool) {
    let sum = input.numbers.iter().fold(0i64, |a, b| a.wrapping_add(*b));
    (sum, input.text.len(), input.flag)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// invoke() returns exactly what the bare function returns, for every
    /// backend and marshalling format.
    #[test]
    fn sandbox_is_transparent(input in arb_input()) {
        sdrad::quiet_fault_traps();
        let expected = digest(input.clone());
        for format in Format::ALL {
            let mut direct = Sandbox::direct().format(format);
            let got = direct.invoke("digest", &input, digest).unwrap();
            prop_assert_eq!(got, expected, "direct/{}", format);

            let mut isolated = Sandbox::in_process().unwrap().format(format);
            let got = isolated.invoke("digest", &input, digest).unwrap();
            prop_assert_eq!(got, expected, "in-process/{}", format);
        }
    }

    /// A panicking body never breaks the sandbox: the next call still
    /// works and returns correct results, any number of times over.
    #[test]
    fn faults_never_poison_the_sandbox(
        inputs in proptest::collection::vec((arb_input(), any::<bool>()), 1..20)
    ) {
        sdrad::quiet_fault_traps();
        let mut sandbox = Sandbox::in_process().unwrap();
        let mut expected_faults = 0u64;
        for (input, should_fault) in inputs {
            if should_fault {
                let result: Result<(i64, usize, bool), _> = sandbox.invoke(
                    "faulty",
                    &input,
                    |_input: Input| panic!("injected"),
                );
                prop_assert!(result.unwrap_err().is_recovered_fault());
                expected_faults += 1;
            } else {
                let expected = digest(input.clone());
                let got = sandbox.invoke("digest", &input, digest).unwrap();
                prop_assert_eq!(got, expected);
            }
        }
        prop_assert_eq!(sandbox.stats().recovered_faults, expected_faults);
    }

    /// invoke_or always yields a value: the fallback handles every
    /// contained fault, and successes pass through unchanged.
    #[test]
    fn invoke_or_is_total(input in arb_input(), fault in any::<bool>()) {
        sdrad::quiet_fault_traps();
        let mut sandbox = Sandbox::in_process().unwrap();
        let expected = if fault { (0, 0, false) } else { digest(input.clone()) };
        let got = sandbox
            .invoke_or(
                "maybe",
                &input,
                move |i: Input| {
                    if fault {
                        panic!("injected")
                    }
                    digest(i)
                },
                |_err| (0, 0, false),
            )
            .unwrap();
        prop_assert_eq!(got, expected);
    }
}
