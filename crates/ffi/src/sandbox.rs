//! The [`Sandbox`]: one place to run a risky function under a chosen
//! isolation backend.

use std::process::Command;

use sdrad::{DomainConfig, DomainId, DomainInfo, DomainManager, DomainPolicy};
use sdrad_serial::{from_bytes, to_bytes, Format};
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::{FfiError, ProcessWorker};

/// Counters of a sandbox's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SandboxStats {
    /// Invocations attempted.
    pub invocations: u64,
    /// Invocations that ended in a contained fault (rewind / worker death).
    pub recovered_faults: u64,
    /// Argument bytes marshalled into the sandbox.
    pub bytes_in: u64,
    /// Result bytes marshalled out of the sandbox.
    pub bytes_out: u64,
}

/// Isolation backend of a [`Sandbox`].
#[derive(Debug)]
enum Backend {
    /// No isolation — the baseline. Marshalling still happens so that
    /// backend comparisons isolate the *isolation* cost, not serde costs.
    Direct,
    /// SDRaD in-process isolation: the function runs in a protection-key
    /// domain; faults rewind the domain.
    InProcess {
        mgr: Box<DomainManager>,
        domain: DomainId,
    },
    /// Sandcrust-style process isolation: the function runs in a worker
    /// subprocess (by registered name); crashes kill only the worker.
    Process(Box<ProcessWorker>),
}

/// A sandbox for foreign/unsafe functions, the SDRaD-FFI entry point.
///
/// Every invocation marshals the arguments in the configured
/// [`Format`], runs the function under the backend's isolation, and
/// marshals the result back. On a contained fault the caller receives
/// [`FfiError`] with [`FfiError::is_recovered_fault`]` == true` and can run
/// an alternate action — the host process never crashes.
///
/// # Example
///
/// ```
/// use sdrad_ffi::{Sandbox, FfiError};
///
/// # fn main() -> Result<(), FfiError> {
/// let mut sandbox = Sandbox::in_process()?;
/// let sum = sandbox.invoke("sum", &vec![1u64, 2, 3], |v: Vec<u64>| {
///     v.iter().sum::<u64>()
/// })?;
/// assert_eq!(sum, 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Sandbox {
    backend: Backend,
    format: Format,
    stats: SandboxStats,
}

impl Sandbox {
    /// A no-isolation sandbox (baseline for comparisons).
    #[must_use]
    pub fn direct() -> Self {
        Sandbox {
            backend: Backend::Direct,
            format: Format::Compact,
            stats: SandboxStats::default(),
        }
    }

    /// An SDRaD in-process sandbox with a default confidential domain.
    ///
    /// # Errors
    ///
    /// [`FfiError::Violation`] wrapping the setup failure.
    pub fn in_process() -> Result<Self, FfiError> {
        Self::in_process_with(DomainConfig::new("ffi").policy(DomainPolicy::Confidential))
    }

    /// An SDRaD in-process sandbox with a custom domain configuration.
    ///
    /// # Errors
    ///
    /// [`FfiError::Violation`] wrapping the setup failure.
    pub fn in_process_with(config: DomainConfig) -> Result<Self, FfiError> {
        let mut mgr = DomainManager::new();
        let domain = mgr.create_domain(config)?;
        Ok(Sandbox {
            backend: Backend::InProcess {
                mgr: Box::new(mgr),
                domain,
            },
            format: Format::Compact,
            stats: SandboxStats::default(),
        })
    }

    /// A process sandbox backed by a worker spawned from `command`
    /// (Sandcrust-style). The local closure passed to
    /// [`invoke`](Self::invoke) is ignored; the *worker's* registered
    /// function of the same name runs instead.
    ///
    /// # Errors
    ///
    /// [`FfiError::Backend`] if the worker cannot be spawned.
    pub fn process(command: Command) -> Result<Self, FfiError> {
        Ok(Sandbox {
            backend: Backend::Process(Box::new(ProcessWorker::spawn(command)?)),
            format: Format::Compact,
            stats: SandboxStats::default(),
        })
    }

    /// Sets the marshalling format (builder-style).
    #[must_use]
    pub fn format(mut self, format: Format) -> Self {
        self.format = format;
        self
    }

    /// The backend's short name (`direct` / `in-process` / `process`).
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        match self.backend {
            Backend::Direct => "direct",
            Backend::InProcess { .. } => "in-process",
            Backend::Process(_) => "process",
        }
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> SandboxStats {
        self.stats
    }

    /// Domain status, for in-process sandboxes.
    #[must_use]
    pub fn domain_info(&self) -> Option<DomainInfo> {
        match &self.backend {
            Backend::InProcess { mgr, domain } => mgr.domain_info(*domain).ok(),
            _ => None,
        }
    }

    /// Invokes a sandboxed function.
    ///
    /// * `name` identifies the function for the process backend's registry
    ///   (and labels diagnostics elsewhere).
    /// * `args` are marshalled by value across the boundary.
    /// * `body` is the function itself, executed locally by the direct and
    ///   in-process backends.
    ///
    /// # Errors
    ///
    /// [`FfiError::Violation`] / [`FfiError::WorkerDied`] for contained
    /// faults (check [`FfiError::is_recovered_fault`], then run your
    /// alternate action); [`FfiError::Serial`] for marshalling failures;
    /// [`FfiError::UnknownFunction`] / [`FfiError::WorkerError`] from the
    /// worker.
    pub fn invoke<A, R, F>(&mut self, name: &str, args: &A, body: F) -> Result<R, FfiError>
    where
        A: Serialize + DeserializeOwned,
        R: Serialize + DeserializeOwned,
        F: FnOnce(A) -> R,
    {
        self.stats.invocations += 1;
        let format = self.format;
        let arg_bytes = to_bytes(format, args)?;
        self.stats.bytes_in += arg_bytes.len() as u64;

        let result_bytes = match &mut self.backend {
            Backend::Direct => {
                let decoded: A = from_bytes(format, &arg_bytes)?;
                to_bytes(format, &body(decoded))?
            }
            Backend::InProcess { mgr, domain } => {
                let outcome = mgr.call(*domain, move |env| {
                    // Copy the serialized arguments into the domain heap and
                    // decode them *inside* the domain, so that the callee
                    // only ever works on its own memory.
                    let addr = env.push_bytes(&arg_bytes);
                    let inside = env.read_bytes(addr, arg_bytes.len());
                    env.free(addr); // staging is call-scoped
                    let decoded: A = match from_bytes(format, &inside) {
                        Ok(v) => v,
                        Err(e) => env.abort(format!("argument decode: {e}")),
                    };
                    let result = body(decoded);
                    match to_bytes(format, &result) {
                        Ok(bytes) => bytes,
                        Err(e) => env.abort(format!("result encode: {e}")),
                    }
                });
                match outcome {
                    Ok(bytes) => bytes,
                    Err(violation) => {
                        self.stats.recovered_faults += 1;
                        return Err(FfiError::Violation(violation));
                    }
                }
            }
            Backend::Process(worker) => match worker.call(name, arg_bytes, format) {
                Ok(bytes) => bytes,
                Err(e @ FfiError::WorkerDied(_)) => {
                    self.stats.recovered_faults += 1;
                    // Recover availability for the next call; the cost of
                    // this respawn is the process baseline's "rewind".
                    let _ = worker.respawn();
                    return Err(e);
                }
                Err(other) => return Err(other),
            },
        };

        self.stats.bytes_out += result_bytes.len() as u64;
        Ok(from_bytes(format, &result_bytes)?)
    }

    /// Invokes with an alternate action: on any *recovered fault* the
    /// fallback runs instead — the paper's "alternate actions in case of
    /// domain violations". Unrecoverable errors still propagate.
    ///
    /// # Errors
    ///
    /// Only non-fault errors (serialization, unknown function, backend).
    pub fn invoke_or<A, R, F, G>(
        &mut self,
        name: &str,
        args: &A,
        body: F,
        fallback: G,
    ) -> Result<R, FfiError>
    where
        A: Serialize + DeserializeOwned,
        R: Serialize + DeserializeOwned,
        F: FnOnce(A) -> R,
        G: FnOnce(&FfiError) -> R,
    {
        match self.invoke(name, args, body) {
            Ok(value) => Ok(value),
            Err(e) if e.is_recovered_fault() => Ok(fallback(&e)),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_backend_runs_body() {
        let mut sandbox = Sandbox::direct();
        let out = sandbox.invoke("triple", &14u32, |x: u32| x * 3).unwrap();
        assert_eq!(out, 42);
        assert_eq!(sandbox.stats().invocations, 1);
        assert_eq!(sandbox.backend_name(), "direct");
    }

    #[test]
    fn in_process_backend_runs_body_in_domain() {
        let mut sandbox = Sandbox::in_process().unwrap();
        let out = sandbox
            .invoke(
                "concat",
                &("ab".to_string(), "cd".to_string()),
                |(a, b): (String, String)| format!("{a}{b}"),
            )
            .unwrap();
        assert_eq!(out, "abcd");
        let info = sandbox.domain_info().expect("in-process has a domain");
        assert_eq!(info.calls, 1);
        assert_eq!(info.violations, 0);
    }

    #[test]
    fn in_process_contains_panics_as_violations() {
        let mut sandbox = Sandbox::in_process().unwrap();
        let err = sandbox
            .invoke("bad", &1u8, |_: u8| -> u8 {
                panic!("use-after-free in C library")
            })
            .unwrap_err();
        assert!(err.is_recovered_fault());
        assert_eq!(sandbox.stats().recovered_faults, 1);
        // Sandbox remains fully usable.
        let ok = sandbox.invoke("good", &2u8, |x: u8| x + 1).unwrap();
        assert_eq!(ok, 3);
    }

    #[test]
    fn invoke_or_runs_alternate_action() {
        let mut sandbox = Sandbox::in_process().unwrap();
        let value = sandbox
            .invoke_or(
                "risky",
                &10u32,
                |_x: u32| -> u32 { panic!("memory corruption") },
                |_err| 0xFA11u32,
            )
            .unwrap();
        assert_eq!(value, 0xFA11);
    }

    #[test]
    fn invoke_or_passes_success_through() {
        let mut sandbox = Sandbox::direct();
        let value = sandbox
            .invoke_or("fine", &5u32, |x: u32| x * 2, |_err| 0)
            .unwrap();
        assert_eq!(value, 10);
    }

    #[test]
    fn format_builder_changes_marshalling() {
        for format in Format::ALL {
            let mut sandbox = Sandbox::direct().format(format);
            let out = sandbox
                .invoke("id", &vec![1u16, 2, 3], |v: Vec<u16>| v)
                .unwrap();
            assert_eq!(out, vec![1, 2, 3]);
        }
    }

    #[test]
    fn stats_count_bytes() {
        let mut sandbox = Sandbox::direct().format(Format::Wire);
        sandbox
            .invoke("echo", &vec![0u8; 100], |v: Vec<u8>| v)
            .unwrap();
        let stats = sandbox.stats();
        assert!(stats.bytes_in >= 100);
        assert!(stats.bytes_out >= 100);
    }
}
