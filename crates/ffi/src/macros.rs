//! Annotation-style macros hiding the SDRaD plumbing.
//!
//! The paper's goal for SDRaD-FFI is that developers "leverage
//! metaprogramming in Rust to annotate functions that must be
//! compartmentalized", with argument/result handling and alternate actions
//! generated for them. [`sandboxed!`] is that annotation: it takes ordinary
//! function syntax and expands to a wrapper that marshals arguments through
//! a [`Sandbox`](crate::Sandbox), runs the body under isolation, and —
//! when a `recover` clause is given — runs the alternate action on any
//! contained fault.

/// Declares sandboxed functions.
///
/// Two forms are supported. The fallible form returns
/// `Result<Ret, FfiError>`:
///
/// ```
/// use sdrad_ffi::{sandboxed, Sandbox};
///
/// sandboxed! {
///     /// Parses a length field from an untrusted header.
///     pub fn parse_len(header: Vec<u8>) -> u64 {
///         u64::from(header[0]) | (u64::from(header[1]) << 8)
///     }
/// }
///
/// # fn main() -> Result<(), sdrad_ffi::FfiError> {
/// let mut sandbox = Sandbox::in_process()?;
/// assert_eq!(parse_len(&mut sandbox, vec![0x34, 0x12])?, 0x1234);
///
/// // Out-of-bounds indexing inside the sandbox is contained:
/// assert!(parse_len(&mut sandbox, vec![]).unwrap_err().is_recovered_fault());
/// # Ok(())
/// # }
/// ```
///
/// The infallible form adds a `recover` clause — the paper's *alternate
/// action* — and returns `Ret` directly:
///
/// ```
/// use sdrad_ffi::{sandboxed, Sandbox};
///
/// sandboxed! {
///     pub fn parse_len_or_zero(header: Vec<u8>) -> u64 {
///         u64::from(header[0])
///     } recover |_err| 0
/// }
///
/// # fn main() -> Result<(), sdrad_ffi::FfiError> {
/// let mut sandbox = Sandbox::in_process()?;
/// assert_eq!(parse_len_or_zero(&mut sandbox, vec![]), 0); // contained + recovered
/// # Ok(())
/// # }
/// ```
///
/// The generated wrapper takes `&mut Sandbox` as its first parameter, so
/// one sandbox (one domain / one worker) can serve many annotated
/// functions, mirroring how SDRaD amortizes domains.
#[macro_export]
macro_rules! sandboxed {
    // Fallible form.
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident : $ty:ty),* $(,)?) -> $ret:ty
        $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name(
            sandbox: &mut $crate::Sandbox,
            $($arg: $ty),*
        ) -> ::std::result::Result<$ret, $crate::FfiError> {
            sandbox.invoke(
                ::std::stringify!($name),
                &($($arg,)*),
                |($($arg,)*): ($($ty,)*)| -> $ret { $body },
            )
        }
    };
    // Infallible form with an alternate action.
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident : $ty:ty),* $(,)?) -> $ret:ty
        $body:block recover $fallback:expr
    ) => {
        $(#[$meta])*
        $vis fn $name(
            sandbox: &mut $crate::Sandbox,
            $($arg: $ty),*
        ) -> $ret {
            match sandbox.invoke_or(
                ::std::stringify!($name),
                &($($arg,)*),
                |($($arg,)*): ($($ty,)*)| -> $ret { $body },
                $fallback,
            ) {
                ::std::result::Result::Ok(value) => value,
                // Non-fault errors (serialization, backend) also route to
                // the alternate action in the infallible form: the caller
                // asked for a total function.
                ::std::result::Result::Err(err) => ($fallback)(&err),
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::Sandbox;

    sandboxed! {
        /// Docs attach to the generated wrapper.
        pub fn add(a: u32, b: u32) -> u32 {
            a + b
        }
    }

    sandboxed! {
        fn risky_div(num: u64, den: u64) -> u64 {
            num / den
        } recover |_err| u64::MAX
    }

    sandboxed! {
        fn no_args() -> String {
            "constant".to_string()
        }
    }

    #[test]
    fn fallible_wrapper_works_on_all_backends() {
        for mut sandbox in [Sandbox::direct(), Sandbox::in_process().unwrap()] {
            assert_eq!(add(&mut sandbox, 2, 3).unwrap(), 5);
        }
    }

    #[test]
    fn recover_clause_handles_division_by_zero_panic() {
        let mut sandbox = Sandbox::in_process().unwrap();
        assert_eq!(risky_div(&mut sandbox, 10, 2), 5);
        assert_eq!(risky_div(&mut sandbox, 10, 0), u64::MAX, "alternate action");
        // And the sandbox keeps serving.
        assert_eq!(risky_div(&mut sandbox, 9, 3), 3);
    }

    #[test]
    fn zero_argument_functions_expand() {
        let mut sandbox = Sandbox::direct();
        assert_eq!(no_args(&mut sandbox).unwrap(), "constant");
    }

    #[test]
    fn module_scope_expansion_works_in_functions_too() {
        sandboxed! {
            fn inner(x: u8) -> u8 { x ^ 0xFF }
        }
        let mut sandbox = Sandbox::direct();
        assert_eq!(inner(&mut sandbox, 0x0F).unwrap(), 0xF0);
    }
}
