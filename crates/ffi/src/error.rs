//! SDRaD-FFI error types.

use std::error::Error;
use std::fmt;

use sdrad::DomainError;
use sdrad_serial::SerialError;

/// Errors surfaced by a sandboxed foreign-function invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum FfiError {
    /// The sandboxed function violated memory safety (or panicked); the
    /// domain was rewound. This is the recoverable outcome SDRaD-FFI is
    /// designed around — run the alternate action and continue.
    Violation(DomainError),
    /// Argument or result (de)serialization failed.
    Serial(SerialError),
    /// The worker subprocess terminated or the pipe broke (process-backend
    /// analogue of a violation: the sandboxed code took the *worker* down,
    /// but the host survives and can respawn).
    WorkerDied(String),
    /// The worker does not know the requested function.
    UnknownFunction(String),
    /// The worker reported a function-level failure.
    WorkerError(String),
    /// Backend cannot perform the operation (e.g. spawning a worker failed).
    Backend(String),
}

impl FfiError {
    /// Whether the sandboxed code failed but the host recovered — i.e. an
    /// alternate action should run. True for violations and worker deaths.
    #[must_use]
    pub fn is_recovered_fault(&self) -> bool {
        matches!(self, FfiError::Violation(_) | FfiError::WorkerDied(_))
    }
}

impl fmt::Display for FfiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FfiError::Violation(e) => write!(f, "sandboxed function contained: {e}"),
            FfiError::Serial(e) => write!(f, "cross-domain serialization failed: {e}"),
            FfiError::WorkerDied(why) => write!(f, "sandbox worker died: {why}"),
            FfiError::UnknownFunction(name) => {
                write!(f, "function `{name}` is not registered in the worker")
            }
            FfiError::WorkerError(msg) => write!(f, "worker-side failure: {msg}"),
            FfiError::Backend(msg) => write!(f, "sandbox backend error: {msg}"),
        }
    }
}

impl Error for FfiError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FfiError::Violation(e) => Some(e),
            FfiError::Serial(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DomainError> for FfiError {
    fn from(e: DomainError) -> Self {
        FfiError::Violation(e)
    }
}

impl From<SerialError> for FfiError {
    fn from(e: SerialError) -> Self {
        FfiError::Serial(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovered_fault_classification() {
        assert!(FfiError::WorkerDied("gone".into()).is_recovered_fault());
        assert!(!FfiError::UnknownFunction("f".into()).is_recovered_fault());
        assert!(!FfiError::Serial(SerialError::UnexpectedEof).is_recovered_fault());
    }

    #[test]
    fn conversions_work_with_question_mark() {
        fn inner() -> Result<(), FfiError> {
            Err(SerialError::UnexpectedEof)?
        }
        assert!(matches!(inner(), Err(FfiError::Serial(_))));
    }
}
