//! The subprocess worker protocol (Sandcrust-style process isolation).
//!
//! The process backend is the baseline the paper's §IV argues against:
//! real OS-process isolation with its context-switch and IPC costs. It is
//! implemented for real here — a worker subprocess executing registered
//! functions over length-prefixed pipes — so the comparison in experiment
//! E8 measures genuine process-boundary costs rather than assuming them.
//!
//! Frame format (both directions): `u32` little-endian length followed by
//! that many payload bytes. Payloads are `wire`-format serde values of
//! [`WireRequest`] / [`WireResponse`].

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::process::{Child, Command, Stdio};

use sdrad_serial::{from_bytes, to_bytes, Format};
use serde::{Deserialize, Serialize};

use crate::{FfiError, Registry};

/// Maximum accepted frame length (16 MiB): a corrupt or malicious length
/// prefix must not cause unbounded allocation in either endpoint.
const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// A request sent to the worker.
#[derive(Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct WireRequest {
    /// Registered function name.
    pub name: String,
    /// Serialized arguments (in the sandbox's payload format).
    pub args: Vec<u8>,
    /// Numeric id of the payload format (see [`format_id`]).
    pub format: u8,
}

/// A response from the worker.
#[derive(Debug, Serialize, Deserialize, PartialEq, Eq)]
pub enum WireResponse {
    /// The function ran; serialized result attached.
    Ok(Vec<u8>),
    /// The function name was not registered.
    Unknown,
    /// The function failed (decode error or panic); message attached.
    Failed(String),
}

/// Maps a [`Format`] to its wire id.
#[must_use]
pub fn format_id(format: Format) -> u8 {
    match format {
        Format::Wire => 0,
        Format::Compact => 1,
        Format::Tagged => 2,
    }
}

/// Reverses [`format_id`], defaulting to `Wire` for unknown ids (the
/// worker must never crash on malformed input).
#[must_use]
pub fn format_from_id(id: u8) -> Format {
    match id {
        1 => Format::Compact,
        2 => Format::Tagged,
        _ => Format::Wire,
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` signals a clean EOF at a
/// frame boundary (peer closed the pipe).
///
/// # Errors
///
/// Propagates I/O errors; oversized frames are `InvalidData`.
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match reader.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Runs the worker side: reads requests from `input`, executes them
/// against `registry`, writes responses to `output`. Returns on EOF.
///
/// A binary acting as a worker calls this from `main` (see the bundled
/// `sdrad-ffi-worker` binary).
///
/// # Errors
///
/// Propagates I/O errors on the pipes; function panics are contained and
/// reported as [`WireResponse::Failed`].
pub fn run_worker<R: Read, W: Write>(registry: &Registry, input: R, output: W) -> io::Result<()> {
    let mut reader = BufReader::new(input);
    let mut writer = BufWriter::new(output);
    while let Some(frame) = read_frame(&mut reader)? {
        let response = match from_bytes::<WireRequest>(Format::Wire, &frame) {
            Ok(request) => {
                let format = format_from_id(request.format);
                match registry.invoke_raw(&request.name, &request.args, format) {
                    Ok(result) => WireResponse::Ok(result),
                    Err(None) => WireResponse::Unknown,
                    Err(Some(msg)) => WireResponse::Failed(msg),
                }
            }
            Err(e) => WireResponse::Failed(format!("malformed request: {e}")),
        };
        let bytes = to_bytes(Format::Wire, &response)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        write_frame(&mut writer, &bytes)?;
    }
    Ok(())
}

/// Client handle to a worker subprocess.
#[derive(Debug)]
pub struct ProcessWorker {
    child: Child,
    command: Command,
    /// Requests served by the current worker incarnation.
    pub served: u64,
    /// Times the worker was (re)spawned.
    pub spawns: u64,
}

impl ProcessWorker {
    /// Spawns a worker from `command` (stdin/stdout piped).
    ///
    /// # Errors
    ///
    /// [`FfiError::Backend`] if the process cannot be started.
    pub fn spawn(mut command: Command) -> Result<Self, FfiError> {
        command.stdin(Stdio::piped()).stdout(Stdio::piped());
        let child = Self::start(&mut command)?;
        Ok(ProcessWorker {
            child,
            command,
            served: 0,
            spawns: 1,
        })
    }

    fn start(command: &mut Command) -> Result<Child, FfiError> {
        command
            .spawn()
            .map_err(|e| FfiError::Backend(format!("spawning worker: {e}")))
    }

    /// Sends one request and waits for the response.
    ///
    /// # Errors
    ///
    /// [`FfiError::WorkerDied`] if the pipe breaks (the host remains
    /// healthy; call [`respawn`](Self::respawn) to recover);
    /// [`FfiError::UnknownFunction`] / [`FfiError::WorkerError`] for
    /// worker-reported failures.
    pub fn call(&mut self, name: &str, args: Vec<u8>, format: Format) -> Result<Vec<u8>, FfiError> {
        let request = WireRequest {
            name: name.to_string(),
            args,
            format: format_id(format),
        };
        let bytes = to_bytes(Format::Wire, &request)?;

        let stdin = self
            .child
            .stdin
            .as_mut()
            .ok_or_else(|| FfiError::WorkerDied("stdin closed".into()))?;
        write_frame(stdin, &bytes).map_err(|e| FfiError::WorkerDied(e.to_string()))?;

        let stdout = self
            .child
            .stdout
            .as_mut()
            .ok_or_else(|| FfiError::WorkerDied("stdout closed".into()))?;
        let frame = read_frame(stdout)
            .map_err(|e| FfiError::WorkerDied(e.to_string()))?
            .ok_or_else(|| FfiError::WorkerDied("worker closed pipe".into()))?;

        self.served += 1;
        match from_bytes::<WireResponse>(Format::Wire, &frame)? {
            WireResponse::Ok(result) => Ok(result),
            WireResponse::Unknown => Err(FfiError::UnknownFunction(name.to_string())),
            WireResponse::Failed(msg) => Err(FfiError::WorkerError(msg)),
        }
    }

    /// Kills the current worker (if any) and starts a fresh one — the
    /// process-isolation recovery path, whose cost E8 compares against a
    /// domain rewind.
    ///
    /// # Errors
    ///
    /// [`FfiError::Backend`] if the replacement cannot be spawned.
    pub fn respawn(&mut self) -> Result<(), FfiError> {
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.child = Self::start(&mut self.command)?;
        self.spawns += 1;
        self.served = 0;
        Ok(())
    }
}

impl Drop for ProcessWorker {
    fn drop(&mut self) {
        // Closing stdin lets the worker exit its loop; kill as a fallback.
        self.child.stdin.take();
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register_builtins;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected_on_read() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn format_ids_round_trip() {
        for format in Format::ALL {
            assert_eq!(format_from_id(format_id(format)), format);
        }
    }

    #[test]
    fn worker_loop_serves_requests_in_memory() {
        let mut registry = Registry::new();
        register_builtins(&mut registry);

        // Two requests: a sum and an unknown function.
        let mut input = Vec::new();
        let req1 = WireRequest {
            name: "sum".into(),
            args: to_bytes(Format::Wire, &vec![1u64, 2, 3]).unwrap(),
            format: format_id(Format::Wire),
        };
        write_frame(&mut input, &to_bytes(Format::Wire, &req1).unwrap()).unwrap();
        let req2 = WireRequest {
            name: "missing".into(),
            args: vec![],
            format: 0,
        };
        write_frame(&mut input, &to_bytes(Format::Wire, &req2).unwrap()).unwrap();

        let mut output = Vec::new();
        run_worker(&registry, io::Cursor::new(input), &mut output).unwrap();

        let mut cursor = io::Cursor::new(output);
        let frame1 = read_frame(&mut cursor).unwrap().unwrap();
        let resp1: WireResponse = from_bytes(Format::Wire, &frame1).unwrap();
        match resp1 {
            WireResponse::Ok(bytes) => {
                let sum: u64 = from_bytes(Format::Wire, &bytes).unwrap();
                assert_eq!(sum, 6);
            }
            other => panic!("unexpected {other:?}"),
        }
        let frame2 = read_frame(&mut cursor).unwrap().unwrap();
        let resp2: WireResponse = from_bytes(Format::Wire, &frame2).unwrap();
        assert_eq!(resp2, WireResponse::Unknown);
    }

    #[test]
    fn worker_loop_contains_panics() {
        let mut registry = Registry::new();
        register_builtins(&mut registry);
        let mut input = Vec::new();
        let req = WireRequest {
            name: "boom".into(),
            args: to_bytes(Format::Wire, &"bang".to_string()).unwrap(),
            format: format_id(Format::Wire),
        };
        write_frame(&mut input, &to_bytes(Format::Wire, &req).unwrap()).unwrap();
        // A second request after the panic must still be served.
        let req2 = WireRequest {
            name: "echo".into(),
            args: to_bytes(Format::Wire, &vec![9u8]).unwrap(),
            format: format_id(Format::Wire),
        };
        write_frame(&mut input, &to_bytes(Format::Wire, &req2).unwrap()).unwrap();

        let mut output = Vec::new();
        run_worker(&registry, io::Cursor::new(input), &mut output).unwrap();
        let mut cursor = io::Cursor::new(output);
        let resp1: WireResponse =
            from_bytes(Format::Wire, &read_frame(&mut cursor).unwrap().unwrap()).unwrap();
        assert!(matches!(resp1, WireResponse::Failed(msg) if msg.contains("bang")));
        let resp2: WireResponse =
            from_bytes(Format::Wire, &read_frame(&mut cursor).unwrap().unwrap()).unwrap();
        assert!(matches!(resp2, WireResponse::Ok(_)));
    }

    #[test]
    fn malformed_request_frame_gets_failed_response() {
        let registry = Registry::new();
        let mut input = Vec::new();
        write_frame(&mut input, &[0xFF, 0xEE, 0xDD]).unwrap();
        let mut output = Vec::new();
        run_worker(&registry, io::Cursor::new(input), &mut output).unwrap();
        let mut cursor = io::Cursor::new(output);
        let resp: WireResponse =
            from_bytes(Format::Wire, &read_frame(&mut cursor).unwrap().unwrap()).unwrap();
        assert!(matches!(resp, WireResponse::Failed(msg) if msg.contains("malformed")));
    }
}
