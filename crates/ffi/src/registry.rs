//! The worker-side function registry.
//!
//! A subprocess cannot receive Rust function pointers from its parent, so
//! — exactly like Sandcrust [9] — the sandboxable functions are *compiled
//! into* the worker and addressed by name. The registry maps names to
//! type-erased wrappers that deserialize arguments, run the function, and
//! serialize the result.

use std::collections::HashMap;

use sdrad_serial::{from_bytes, to_bytes, Format};
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Type-erased sandboxed function: raw argument bytes in, raw result bytes
/// out, error as text (it crosses a process boundary).
type ErasedFn = Box<dyn Fn(&[u8], Format) -> Result<Vec<u8>, String> + Send + Sync>;

/// A registry of named functions a worker can execute.
///
/// # Example
///
/// ```
/// use sdrad_ffi::Registry;
///
/// let mut registry = Registry::new();
/// registry.register("add", |(a, b): (u32, u32)| a + b);
/// assert!(registry.contains("add"));
/// ```
#[derive(Default)]
pub struct Registry {
    functions: HashMap<String, ErasedFn>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            functions: HashMap::new(),
        }
    }

    /// Registers `f` under `name`. Arguments and results must be
    /// serde-serializable, since they cross the process boundary by value.
    /// Re-registering a name replaces the previous function.
    pub fn register<A, R, F>(&mut self, name: impl Into<String>, f: F)
    where
        A: DeserializeOwned,
        R: Serialize,
        F: Fn(A) -> R + Send + Sync + 'static,
    {
        let wrapped: ErasedFn = Box::new(move |bytes, format| {
            let args: A = from_bytes(format, bytes).map_err(|e| format!("argument decode: {e}"))?;
            let result = f(args);
            to_bytes(format, &result).map_err(|e| format!("result encode: {e}"))
        });
        self.functions.insert(name.into(), wrapped);
    }

    /// Whether `name` is registered.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.functions.contains_key(name)
    }

    /// Registered names, unordered.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.functions.keys().map(String::as_str)
    }

    /// Invokes a registered function on raw bytes.
    ///
    /// # Errors
    ///
    /// `Err(None)` if the function is unknown; `Err(Some(msg))` if the
    /// function itself failed (decode, encode, or panic).
    pub fn invoke_raw(
        &self,
        name: &str,
        args: &[u8],
        format: Format,
    ) -> Result<Vec<u8>, Option<String>> {
        let f = self.functions.get(name).ok_or(None)?;
        // A panicking sandboxed function must not take the worker loop
        // down with it: catch and report, like a fault would be.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(args, format)))
            .map_err(|payload| {
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "panic in sandboxed function".to_string()
                };
                Some(format!("panic: {msg}"))
            })?
            .map_err(Some)
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("functions", &self.functions.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Registers the built-in demonstration functions used by the bundled
/// worker binary, the tests and the benches:
///
/// * `echo(Vec<u8>) -> Vec<u8>` — identity, measures pure boundary cost,
/// * `sum(Vec<u64>) -> u64` — wrapping sum,
/// * `checksum(Vec<u8>) -> u64` — FNV-1a, a tiny "real" computation,
/// * `boom(String) -> ()` — panics with the given message (crash testing).
pub fn register_builtins(registry: &mut Registry) {
    registry.register("echo", |data: Vec<u8>| data);
    registry.register("sum", |values: Vec<u64>| {
        values.iter().fold(0u64, |acc, v| acc.wrapping_add(*v))
    });
    registry.register("checksum", |data: Vec<u8>| {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in data {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash
    });
    registry.register("boom", |msg: String| -> () { panic!("{msg}") });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_invoke() {
        let mut registry = Registry::new();
        registry.register("double", |x: u64| x * 2);
        let args = to_bytes(Format::Wire, &21u64).unwrap();
        let out = registry.invoke_raw("double", &args, Format::Wire).unwrap();
        let result: u64 = from_bytes(Format::Wire, &out).unwrap();
        assert_eq!(result, 42);
    }

    #[test]
    fn unknown_function_is_none() {
        let registry = Registry::new();
        assert_eq!(registry.invoke_raw("nope", &[], Format::Wire), Err(None));
    }

    #[test]
    fn bad_arguments_are_reported() {
        let mut registry = Registry::new();
        registry.register("double", |x: u64| x * 2);
        let err = registry
            .invoke_raw("double", &[1, 2], Format::Wire)
            .unwrap_err();
        assert!(err.expect("some message").contains("argument decode"));
    }

    #[test]
    fn panics_are_contained() {
        let mut registry = Registry::new();
        register_builtins(&mut registry);
        let args = to_bytes(Format::Wire, &"kaput".to_string()).unwrap();
        let err = registry
            .invoke_raw("boom", &args, Format::Wire)
            .unwrap_err();
        assert!(err.expect("some message").contains("kaput"));
        // The registry (and the worker that owns it) is still usable.
        let args = to_bytes(Format::Wire, &vec![1u64, 2, 3]).unwrap();
        assert!(registry.invoke_raw("sum", &args, Format::Wire).is_ok());
    }

    #[test]
    fn builtins_are_complete() {
        let mut registry = Registry::new();
        register_builtins(&mut registry);
        for name in ["echo", "sum", "checksum", "boom"] {
            assert!(registry.contains(name), "{name} missing");
        }
    }

    #[test]
    fn checksum_is_deterministic() {
        let mut registry = Registry::new();
        register_builtins(&mut registry);
        let args = to_bytes(Format::Compact, &vec![1u8, 2, 3]).unwrap();
        let a = registry
            .invoke_raw("checksum", &args, Format::Compact)
            .unwrap();
        let b = registry
            .invoke_raw("checksum", &args, Format::Compact)
            .unwrap();
        assert_eq!(a, b);
    }
}
