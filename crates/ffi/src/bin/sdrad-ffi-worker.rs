//! The bundled sandbox worker binary.
//!
//! Serves the built-in demonstration functions (`echo`, `sum`, `checksum`,
//! `boom`) over the length-prefixed stdio protocol. Used by the process
//! backend in tests and in the E8 isolation-cost experiment.
//!
//! Run manually: `cargo run -p sdrad-ffi --bin sdrad-ffi-worker` (then type
//! nothing — it speaks a binary protocol on stdin/stdout).

use std::process::ExitCode;

use sdrad_ffi::{register_builtins, run_worker, Registry};

fn main() -> ExitCode {
    let mut registry = Registry::new();
    register_builtins(&mut registry);
    match run_worker(&registry, std::io::stdin().lock(), std::io::stdout().lock()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sdrad-ffi-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
