//! # sdrad-ffi — sandboxing unsafe/foreign functions in Rust
//!
//! Reproduction of **SDRaD-FFI** (§III of the paper): Rust's memory-safety
//! guarantees stop at `unsafe` and FFI boundaries, so a memory bug in a C
//! library (or in unsafe Rust) can corrupt the whole process. SDRaD-FFI
//! runs such functions inside an isolated domain and recovers — via rewind
//! and discard — when they misbehave, optionally running an *alternate
//! action* instead of failing.
//!
//! Three interchangeable backends let the experiments compare isolation
//! strategies on identical workloads:
//!
//! * [`Sandbox::direct`] — no isolation (baseline; marshalling still
//!   happens so comparisons isolate the isolation cost itself),
//! * [`Sandbox::in_process`] — SDRaD protection-key domains (the paper's
//!   contribution),
//! * [`Sandbox::process`] — a real worker subprocess, the Sandcrust-style
//!   process-isolation baseline (reference \[9\] of the paper) whose
//!   "significant run-time overheads" §III cites.
//!
//! The [`sandboxed!`] macro provides the annotation-style front end; the
//! [`Registry`]/[`run_worker`] pair implements the worker side of the
//! process backend.
//!
//! ## Example
//!
//! ```
//! use sdrad_ffi::{sandboxed, Sandbox};
//!
//! sandboxed! {
//!     /// A "legacy C" routine: crashes on short input.
//!     pub fn legacy_checksum(data: Vec<u8>) -> u32 {
//!         let mut sum = u32::from(data[0]);            // bug: no bounds check
//!         for b in &data[1..] { sum = sum.wrapping_add(u32::from(*b)); }
//!         sum
//!     } recover |_err| 0
//! }
//!
//! # fn main() -> Result<(), sdrad_ffi::FfiError> {
//! let mut sandbox = Sandbox::in_process()?;
//! assert_eq!(legacy_checksum(&mut sandbox, vec![1, 2, 3]), 6);
//! assert_eq!(legacy_checksum(&mut sandbox, vec![]), 0); // contained, recovered
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod macros;
mod registry;
mod sandbox;
mod worker;

pub use error::FfiError;
pub use registry::{register_builtins, Registry};
pub use sandbox::{Sandbox, SandboxStats};
pub use worker::{
    format_from_id, format_id, read_frame, run_worker, write_frame, ProcessWorker, WireRequest,
    WireResponse,
};

// Re-exports used by macro expansions and downstream code.
pub use sdrad::{DomainConfig, DomainPolicy};
pub use sdrad_serial::Format;
