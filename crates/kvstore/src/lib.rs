//! # sdrad-kvstore — a Memcached-like cache as SDRaD workload
//!
//! The paper's headline numbers come from a Memcached deployment: 2–4 %
//! SDRaD overhead, a ~2 minute restart for a 10 GB instance versus a
//! 3.5 µs in-process rewind, and containment of malicious clients. This
//! crate provides the workload those experiments need:
//!
//! * [`Store`] — a sharded, byte-budgeted LRU cache with snapshot/restore
//!   (the restart path whose cost scales with dataset size),
//! * [`Command`]/[`Response`] — a memcached-style text protocol, including
//!   the deliberately vulnerable `xstat` command (a missing bounds check,
//!   CVE-2011-4971-style),
//! * [`Server`] — a request loop that can run the parser either
//!   unprotected (a fault "kills the process", requiring a costly
//!   restart) or inside an SDRaD domain (a fault is rewound in
//!   microseconds and answered with `SERVER_ERROR`),
//! * [`Session`] — per-connection buffering over `sdrad-net` endpoints.
//!
//! ## Example
//!
//! ```
//! use sdrad_kvstore::{Server, ServerConfig, Isolation};
//!
//! let mut server = Server::new(ServerConfig::default(), Isolation::Domain).unwrap();
//! assert_eq!(server.handle(b"set greeting 5\r\nhello\r\n"), b"STORED\r\n");
//! assert_eq!(
//!     server.handle(b"get greeting\r\n"),
//!     b"VALUE greeting 5\r\nhello\r\nEND\r\n",
//! );
//!
//! // A malicious xstat request is contained, not fatal:
//! let response = server.handle(b"xstat 4096 4\r\nboom\r\n");
//! assert!(response.starts_with(b"SERVER_ERROR"));
//! assert!(server.is_alive());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod protocol;
mod server;
mod store;

pub use protocol::{parse_command, Command, ProtocolError, Response};
pub use server::{
    apply_op, process_unprotected_command, stage_command, Isolation, Server, ServerConfig,
    ServerStats, Session, StoreOp,
};
pub use store::{Snapshot, Store, StoreConfig, StoreStats};
