//! The request-processing server, with and without SDRaD isolation.

use sdrad::{
    ClientId, DomainConfig, DomainError, DomainId, DomainManager, DomainPolicy, DomainPool,
};
use sdrad_net::Endpoint;

use crate::{parse_command, Command, ProtocolError, Response, Snapshot, Store, StoreConfig};

/// How request processing is isolated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isolation {
    /// No isolation: the planted memory bug crashes the whole server
    /// (state lost; a costly restart is needed). The paper's baseline.
    None,
    /// SDRaD: request processing runs in one protection-key domain; the
    /// bug faults, the domain rewinds in microseconds, the client gets
    /// `SERVER_ERROR`, everyone else is unaffected.
    Domain,
    /// SDRaD with per-client domains (the paper's service scenario): each
    /// client's requests run in that client's pooled domain, so even
    /// in-flight state of other clients is out of the blast radius.
    PerClient,
}

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerConfig {
    /// Store (shard/capacity) configuration.
    pub store: StoreConfig,
}

/// Server activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests fully processed (any outcome).
    pub requests: u64,
    /// Requests answered with a protocol `ERROR`.
    pub protocol_errors: u64,
    /// Faults contained by a domain rewind (isolation on).
    pub contained_faults: u64,
    /// Fatal crashes (isolation off): each one needs a restart.
    pub crashes: u64,
    /// Cumulative nanoseconds spent rewinding after contained faults.
    pub rewind_ns: u64,
}

/// What the in-domain processing decided the root should do to the store.
///
/// Mutating the store happens *outside* the domain: under the integrity
/// policy the domain cannot write root data, so the parsed intent is
/// passed out by value — the same pattern the SDRaD Memcached retrofit
/// uses for its wrapped commands. Public so external executors (the
/// `sdrad-runtime` workers, which own their own `DomainManager`) can
/// drive the same request pipeline.
#[derive(Debug, PartialEq, Eq)]
pub enum StoreOp {
    /// Look up a key.
    Get(String),
    /// Store a value, with an optional TTL in logical ticks.
    Set {
        /// Cache key.
        key: String,
        /// Value bytes.
        value: Vec<u8>,
        /// Optional TTL in logical ticks.
        ttl: Option<u64>,
    },
    /// Delete a key.
    Delete(String),
    /// Render statistics.
    Stats,
    /// Drop every entry.
    Flush,
    /// Result of the (vulnerable) xstat blob checksum.
    XStat(u64),
    /// Close the session.
    Quit,
}

/// Runs one parsed command **inside** an SDRaD domain: request data is
/// staged on the domain heap and processed there, and only the resulting
/// intent leaves the domain. This is the exact processing
/// [`Server::execute_for`] performs; it is exposed so executors that own
/// their own `DomainManager` (per-worker managers in `sdrad-runtime`)
/// run the identical workload, planted bug included.
pub fn stage_command(env: &mut sdrad::DomainEnv<'_>, cmd: Command<'_>) -> StoreOp {
    match cmd {
        Command::Get(key) => {
            let staged = env.push_bytes(key.as_bytes());
            let back = env.read_bytes(staged, key.len());
            env.free(staged);
            StoreOp::Get(string_from_copy_out(back))
        }
        Command::Set { key, value, ttl } => {
            let k = env.push_bytes(key.as_bytes());
            let v = env.push_bytes(value);
            let key_back = env.read_bytes(k, key.len());
            let value_back = env.read_bytes(v, value.len());
            env.free(v);
            env.free(k);
            StoreOp::Set {
                key: string_from_copy_out(key_back),
                value: value_back,
                ttl,
            }
        }
        Command::Delete(key) => StoreOp::Delete(key.to_string()),
        Command::Stats => StoreOp::Stats,
        Command::Flush => StoreOp::Flush,
        Command::XStat { declared, data } => {
            StoreOp::XStat(vulnerable_xstat_in_domain(env, declared, data))
        }
        Command::Quit => StoreOp::Quit,
    }
}

/// Turns a domain copy-out buffer into a `String`, reusing its storage
/// when the bytes are valid UTF-8 (always, for keys the parser accepted
/// as UTF-8 request lines). The lossy copy is the cold fallback only.
fn string_from_copy_out(bytes: Vec<u8>) -> String {
    match String::from_utf8(bytes) {
        Ok(key) => key,
        Err(err) => String::from_utf8_lossy(err.as_bytes()).into_owned(),
    }
}

/// Runs one parsed command on the **unprotected** path. `None` models a
/// fatal memory fault (`SIGSEGV`) in the host process — the baseline the
/// paper restarts from. Exposed for external executors (see
/// [`stage_command`]).
#[must_use]
pub fn process_unprotected_command(cmd: Command<'_>) -> Option<StoreOp> {
    Server::process_unprotected(cmd)
}

/// Applies a store intent, returning the protocol response. `StoreOp::
/// Stats` renders store-level counters only; [`Server`] overlays its own
/// request counters on top.
pub fn apply_op(store: &mut Store, op: StoreOp) -> Response {
    match op {
        StoreOp::Get(key) => match store.get(&key) {
            Some(value) => Response::Value { key, value },
            None => Response::Miss,
        },
        StoreOp::Set { key, value, ttl } => {
            store.set_with_ttl(key, value, ttl);
            Response::Stored
        }
        StoreOp::Delete(key) => {
            if store.delete(&key) {
                Response::Deleted
            } else {
                Response::NotFound
            }
        }
        StoreOp::Stats => {
            let stats = store.stats();
            Response::Stats(vec![
                ("entries".into(), stats.entries),
                ("bytes".into(), stats.bytes),
                ("hits".into(), stats.hits),
                ("misses".into(), stats.misses),
                ("evictions".into(), stats.evictions),
            ])
        }
        StoreOp::Flush => {
            store.flush();
            Response::Ok
        }
        StoreOp::XStat(checksum) => Response::Stats(vec![("xstat_checksum".into(), checksum)]),
        StoreOp::Quit => Response::Ok,
    }
}

/// The memcached-like server.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct Server {
    store: Store,
    isolation: Isolation,
    mgr: Option<DomainManager>,
    domain: Option<DomainId>,
    pool: Option<DomainPool>,
    stats: ServerStats,
    crashed: bool,
}

impl Server {
    /// Creates a server with the requested isolation mode.
    ///
    /// # Errors
    ///
    /// [`DomainError`] if the isolation domain cannot be created.
    pub fn new(config: ServerConfig, isolation: Isolation) -> Result<Self, DomainError> {
        let domain_config = DomainConfig::new("kvstore-request")
            .heap_capacity(4 << 20)
            .policy(DomainPolicy::Integrity);
        let (mgr, domain, pool) = match isolation {
            Isolation::None => (None, None, None),
            Isolation::Domain => {
                let mut mgr = DomainManager::new();
                let domain = mgr.create_domain(domain_config)?;
                (Some(mgr), Some(domain), None)
            }
            Isolation::PerClient => {
                let mgr = DomainManager::new();
                let pool = DomainPool::new(
                    DomainConfig {
                        name: "kvstore-client".into(),
                        heap_capacity: 1 << 20,
                        ..domain_config
                    },
                    8,
                );
                (Some(mgr), None, Some(pool))
            }
        };
        Ok(Server {
            store: Store::new(config.store),
            isolation,
            mgr,
            domain,
            pool,
            stats: ServerStats::default(),
            crashed: false,
        })
    }

    /// The isolation mode this server runs with.
    #[must_use]
    pub fn isolation(&self) -> Isolation {
        self.isolation
    }

    /// Whether the server is alive (an unprotected server dies at the
    /// first triggered bug and stays dead until [`restart_from`]).
    ///
    /// [`restart_from`]: Self::restart_from
    #[must_use]
    pub fn is_alive(&self) -> bool {
        !self.crashed
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Read access to the store (setup and verification).
    #[must_use]
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Write access to the store (bulk setup in experiments).
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Captures the store contents (the data a restart would reload).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.store.snapshot()
    }

    /// The restart path for the unprotected baseline: rebuilds the store
    /// from a snapshot and brings the server back up. The wall-clock cost
    /// of this call scales with the snapshot size (experiments E2/E3).
    pub fn restart_from(&mut self, snapshot: &Snapshot) {
        self.store = Store::restore(StoreConfig::default(), snapshot);
        self.crashed = false;
    }

    /// Parses and executes exactly one request, returning the raw response
    /// bytes (empty if the server is dead — the connection just hangs,
    /// which is what a crashed process looks like to its clients).
    pub fn handle(&mut self, raw: &[u8]) -> Vec<u8> {
        self.handle_for(ClientId(0), raw)
    }

    /// Like [`handle`](Self::handle), attributing the request to a client
    /// (used by per-client isolation to pick the client's domain).
    pub fn handle_for(&mut self, client: ClientId, raw: &[u8]) -> Vec<u8> {
        if self.crashed {
            return Vec::new();
        }
        match parse_command(raw) {
            Ok((cmd, _consumed)) => self.execute_for(client, cmd).to_bytes(),
            Err(ProtocolError::Incomplete) => Vec::new(),
            Err(_) => {
                self.stats.protocol_errors += 1;
                Response::Error.to_bytes()
            }
        }
    }

    /// Executes a parsed command under the configured isolation.
    pub fn execute(&mut self, cmd: Command<'_>) -> Response {
        self.execute_for(ClientId(0), cmd)
    }

    /// Status of the domain serving `client`, in per-client mode.
    #[must_use]
    pub fn client_domain_info(&mut self, client: ClientId) -> Option<sdrad::DomainInfo> {
        let pool = self.pool.as_mut()?;
        let mgr = self.mgr.as_mut()?;
        let domain = pool.domain_for(mgr, client).ok()?;
        mgr.domain_info(domain).ok()
    }

    /// Executes a parsed command for a specific client.
    pub fn execute_for(&mut self, client: ClientId, cmd: Command<'_>) -> Response {
        if self.crashed {
            return Response::ServerError("server is down".into());
        }
        self.stats.requests += 1;
        self.store.advance(1); // one logical TTL tick per request
        if cmd == Command::Stats {
            return self.render_stats();
        }
        let op = match self.isolation {
            Isolation::None => match Self::process_unprotected(cmd) {
                Some(op) => op,
                None => {
                    // The memory bug fired with no isolation: the process
                    // is gone. (A real deployment would now pay the full
                    // restart cost.)
                    self.crashed = true;
                    self.stats.crashes += 1;
                    return Response::ServerError("server crashed".into());
                }
            },
            Isolation::Domain | Isolation::PerClient => {
                let mgr = self.mgr.as_mut().expect("domain mode has a manager");
                let domain = match self.isolation {
                    Isolation::Domain => self.domain.expect("domain mode has a domain"),
                    Isolation::PerClient => {
                        let pool = self.pool.as_mut().expect("per-client mode has a pool");
                        match pool.domain_for(mgr, client) {
                            Ok(domain) => domain,
                            Err(e) => {
                                return Response::ServerError(format!(
                                    "no domain for {client}: {e}"
                                ));
                            }
                        }
                    }
                    Isolation::None => unreachable!("handled above"),
                };
                match mgr.call(domain, move |env| stage_command(env, cmd)) {
                    Ok(op) => op,
                    Err(DomainError::Violation {
                        fault, rewind_ns, ..
                    }) => {
                        self.stats.contained_faults += 1;
                        self.stats.rewind_ns += rewind_ns;
                        return Response::ServerError(format!("contained: {}", fault.kind()));
                    }
                    Err(other) => {
                        return Response::ServerError(format!("isolation error: {other}"));
                    }
                }
            }
        };
        self.apply(op)
    }

    /// The unprotected processing path. `None` models a fatal memory
    /// fault (`SIGSEGV`) in the host process.
    fn process_unprotected(cmd: Command<'_>) -> Option<StoreOp> {
        Some(match cmd {
            Command::Get(key) => StoreOp::Get(key.to_string()),
            Command::Set { key, value, ttl } => StoreOp::Set {
                key: key.to_string(),
                value: value.to_vec(),
                ttl,
            },
            Command::Delete(key) => StoreOp::Delete(key.to_string()),
            Command::Stats => StoreOp::Stats,
            Command::Flush => StoreOp::Flush,
            Command::XStat { declared, data } => {
                // The planted bug: the handler "processes" `declared`
                // bytes of a blob that is only `data.len()` long. Without
                // isolation the overflow corrupts the process and the OS
                // kills it.
                if declared > data.len() {
                    return None;
                }
                StoreOp::XStat(fnv_checksum(&data[..declared]))
            }
            Command::Quit => StoreOp::Quit,
        })
    }

    /// Applies a store intent produced by request processing.
    fn apply(&mut self, op: StoreOp) -> Response {
        match op {
            // Server-level stats overlay the store-level counters.
            StoreOp::Stats => self.render_stats(),
            other => apply_op(&mut self.store, other),
        }
    }

    fn render_stats(&self) -> Response {
        let store = self.store.stats();
        Response::Stats(vec![
            ("entries".into(), store.entries),
            ("bytes".into(), store.bytes),
            ("hits".into(), store.hits),
            ("misses".into(), store.misses),
            ("evictions".into(), store.evictions),
            ("requests".into(), self.stats.requests),
            ("contained_faults".into(), self.stats.contained_faults),
            ("crashes".into(), self.stats.crashes),
        ])
    }
}

/// The same planted bug, executed inside the domain on domain memory: the
/// handler writes its "normalized" blob over a buffer sized for the
/// *actual* data but trusting the *declared* length. The overflow smashes
/// heap canaries (or leaves the heap region entirely) and is detected —
/// the fault unwinds to the domain boundary and the server rewinds.
fn vulnerable_xstat_in_domain(env: &mut sdrad::DomainEnv<'_>, declared: usize, data: &[u8]) -> u64 {
    let buffer = env.push_bytes(data);
    let processed = env.read_bytes(buffer, declared.min(data.len()));
    let checksum = fnv_checksum(&processed);
    // BUG (same trust as the baseline path): scrub the scratch buffer
    // using the *declared* length before releasing it.
    env.write(buffer, &vec![0xA5u8; declared]); // overflow -> canary smash
    env.free(buffer); // free() also re-verifies the canaries
    checksum
}

/// FNV-1a, the blob "statistic" xstat computes.
fn fnv_checksum(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in data {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// A buffered per-connection session pump.
///
/// Reads whatever the client has sent, executes every complete request,
/// and writes the responses back. Incomplete requests stay buffered.
#[derive(Debug)]
pub struct Session {
    endpoint: Endpoint,
    client: ClientId,
    buffer: Vec<u8>,
}

impl Session {
    /// Wraps an accepted connection (anonymous client).
    #[must_use]
    pub fn new(endpoint: Endpoint) -> Self {
        Self::with_client(endpoint, ClientId(0))
    }

    /// Wraps an accepted connection with a client identity, so per-client
    /// isolation can route requests to the client's own domain.
    #[must_use]
    pub fn with_client(endpoint: Endpoint, client: ClientId) -> Self {
        Session {
            endpoint,
            client,
            buffer: Vec::new(),
        }
    }

    /// Pumps pending requests through `server`; returns how many were
    /// completed this call.
    pub fn poll(&mut self, server: &mut Server) -> usize {
        self.buffer.extend(self.endpoint.read_available());
        let mut completed = 0;
        loop {
            if !server.is_alive() {
                // Crashed server: clients get silence.
                return completed;
            }
            match parse_command(&self.buffer) {
                Ok((cmd, consumed)) => {
                    // Execute before draining: the command borrows the
                    // buffer it was parsed from.
                    let response = server.execute_for(self.client, cmd);
                    self.buffer.drain(..consumed);
                    self.endpoint.write(&response.to_bytes());
                    completed += 1;
                }
                Err(ProtocolError::Incomplete) => return completed,
                Err(_) => {
                    // Malformed line: answer ERROR and drop through the
                    // next newline (memcached behaviour).
                    if let Some(pos) = self.buffer.iter().position(|&b| b == b'\n') {
                        self.buffer.drain(..=pos);
                    } else {
                        self.buffer.clear();
                    }
                    self.endpoint.write(&Response::Error.to_bytes());
                    completed += 1;
                }
            }
        }
    }

    /// The underlying endpoint (e.g. to check `is_open`).
    #[must_use]
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(isolation: Isolation) -> Server {
        Server::new(ServerConfig::default(), isolation).unwrap()
    }

    #[test]
    fn basic_protocol_round_trip() {
        for isolation in [Isolation::None, Isolation::Domain] {
            let mut s = server(isolation);
            assert_eq!(s.handle(b"set k 3\r\nabc\r\n"), b"STORED\r\n");
            assert_eq!(s.handle(b"get k\r\n"), b"VALUE k 3\r\nabc\r\nEND\r\n");
            assert_eq!(s.handle(b"get nope\r\n"), b"END\r\n");
            assert_eq!(s.handle(b"delete k\r\n"), b"DELETED\r\n");
            assert_eq!(s.handle(b"delete k\r\n"), b"NOT_FOUND\r\n");
        }
    }

    #[test]
    fn benign_xstat_works_in_both_modes() {
        for isolation in [Isolation::None, Isolation::Domain] {
            let mut s = server(isolation);
            let response = s.handle(b"xstat 4 4\r\nblob\r\n");
            let text = String::from_utf8(response).unwrap();
            assert!(
                text.starts_with("STAT xstat_checksum"),
                "{isolation:?}: {text}"
            );
            assert!(s.is_alive());
        }
    }

    #[test]
    fn exploit_kills_unprotected_server() {
        let mut s = server(Isolation::None);
        s.handle(b"set k 1\r\nv\r\n");
        let response = s.handle(b"xstat 4096 4\r\nboom\r\n");
        assert!(String::from_utf8_lossy(&response).contains("crashed"));
        assert!(!s.is_alive());
        assert_eq!(s.stats().crashes, 1);
        // Dead server serves nothing.
        assert!(s.handle(b"get k\r\n").is_empty());
    }

    #[test]
    fn exploit_is_contained_by_domain_isolation() {
        let mut s = server(Isolation::Domain);
        s.handle(b"set k 1\r\nv\r\n");
        let response = s.handle(b"xstat 4096 4\r\nboom\r\n");
        assert!(String::from_utf8_lossy(&response).starts_with("SERVER_ERROR contained"));
        assert!(s.is_alive(), "SDRaD server survives");
        assert_eq!(s.stats().contained_faults, 1);
        // And keeps serving, with data intact.
        assert_eq!(s.handle(b"get k\r\n"), b"VALUE k 1\r\nv\r\nEND\r\n");
    }

    #[test]
    fn repeated_attacks_never_take_the_domain_server_down() {
        let mut s = server(Isolation::Domain);
        for i in 0..50 {
            let attack = format!("xstat 8192 4\r\nb{i:03}\r\n");
            let response = s.handle(attack.as_bytes());
            assert!(String::from_utf8_lossy(&response).starts_with("SERVER_ERROR"));
            assert!(s.is_alive());
        }
        assert_eq!(s.stats().contained_faults, 50);
    }

    #[test]
    fn restart_recovers_the_unprotected_server_with_data() {
        let mut s = server(Isolation::None);
        for i in 0..20 {
            s.handle(format!("set key-{i} 2\r\nxx\r\n").as_bytes());
        }
        let snapshot = s.snapshot();
        s.handle(b"xstat 999 1\r\nz\r\n");
        assert!(!s.is_alive());

        s.restart_from(&snapshot);
        assert!(s.is_alive());
        assert_eq!(
            s.handle(b"get key-7\r\n"),
            b"VALUE key-7 2\r\nxx\r\nEND\r\n"
        );
    }

    #[test]
    fn stats_expose_containment_counters() {
        let mut s = server(Isolation::Domain);
        s.handle(b"xstat 512 1\r\nq\r\n");
        let text = String::from_utf8(s.handle(b"stats\r\n")).unwrap();
        assert!(text.contains("STAT contained_faults 1"), "{text}");
    }

    #[test]
    fn malformed_requests_get_error_and_are_counted() {
        let mut s = server(Isolation::Domain);
        assert_eq!(s.handle(b"bogus cmd\r\n"), b"ERROR\r\n");
        assert_eq!(s.stats().protocol_errors, 1);
    }

    #[test]
    fn session_pumps_pipelined_requests() {
        let listener = sdrad_net::Listener::new();
        let mut client = listener.connect();
        let mut session = Session::new(listener.accept().unwrap());
        let mut s = server(Isolation::Domain);

        client.write(b"set a 1\r\nx\r\nget a\r\nget missing\r\n");
        let completed = session.poll(&mut s);
        assert_eq!(completed, 3);
        let response = client.read_available();
        assert_eq!(
            response,
            b"STORED\r\nVALUE a 1\r\nx\r\nEND\r\nEND\r\n".to_vec()
        );
    }

    #[test]
    fn session_buffers_partial_requests() {
        let listener = sdrad_net::Listener::new();
        let mut client = listener.connect();
        let mut session = Session::new(listener.accept().unwrap());
        let mut s = server(Isolation::None);

        client.write(b"set k 4\r\nab");
        assert_eq!(session.poll(&mut s), 0, "incomplete stays buffered");
        client.write(b"cd\r\n");
        assert_eq!(session.poll(&mut s), 1);
        assert_eq!(client.read_available(), b"STORED\r\n");
    }

    #[test]
    fn ttl_expiry_works_through_the_protocol() {
        for isolation in [Isolation::None, Isolation::Domain] {
            let mut s = server(isolation);
            // TTL of 2 ticks; each request advances the clock by 1.
            assert_eq!(s.handle(b"set ephemeral 1 2\r\nx\r\n"), b"STORED\r\n");
            assert_eq!(
                s.handle(b"get ephemeral\r\n"),
                b"VALUE ephemeral 1\r\nx\r\nEND\r\n",
                "{isolation:?}: still alive after one tick"
            );
            let _ = s.handle(b"stats\r\n"); // tick
            assert_eq!(
                s.handle(b"get ephemeral\r\n"),
                b"END\r\n",
                "{isolation:?}: expired after TTL"
            );
        }
    }

    #[test]
    fn per_client_mode_serves_and_contains() {
        let mut s = server(Isolation::PerClient);
        let alice = ClientId(1);
        let mallory = ClientId(2);

        assert_eq!(s.handle_for(alice, b"set a 1\r\nx\r\n"), b"STORED\r\n");
        let attack = s.handle_for(mallory, b"xstat 8192 4\r\nboom\r\n");
        assert!(String::from_utf8_lossy(&attack).starts_with("SERVER_ERROR"));
        assert!(s.is_alive());

        // Alice's domain never rewound; Mallory's did.
        assert_eq!(s.client_domain_info(alice).unwrap().violations, 0);
        assert_eq!(s.client_domain_info(mallory).unwrap().violations, 1);
        // And Alice is served normally afterwards.
        assert_eq!(
            s.handle_for(alice, b"get a\r\n"),
            b"VALUE a 1\r\nx\r\nEND\r\n"
        );
    }

    #[test]
    fn per_client_mode_multiplexes_many_clients() {
        let mut s = server(Isolation::PerClient);
        for i in 0..100u64 {
            let response = s.handle_for(ClientId(i), b"set shared 2\r\nok\r\n");
            assert_eq!(response, b"STORED\r\n", "client {i}");
        }
        // At most the pool budget of domains exists despite 100 clients.
        let stats = s.stats();
        assert_eq!(stats.requests, 100);
    }

    #[test]
    fn per_client_sessions_route_by_identity() {
        let listener = sdrad_net::Listener::new();
        let mut alice_conn = listener.connect();
        let mut alice = Session::with_client(listener.accept().unwrap(), ClientId(10));
        let mut mallory_conn = listener.connect();
        let mut mallory = Session::with_client(listener.accept().unwrap(), ClientId(11));
        let mut s = server(Isolation::PerClient);

        mallory_conn.write(b"xstat 8192 4\r\nboom\r\n");
        mallory.poll(&mut s);
        alice_conn.write(b"set k 1\r\nv\r\nget k\r\n");
        alice.poll(&mut s);

        assert!(String::from_utf8_lossy(&mallory_conn.read_available()).starts_with("SERVER_ERROR"));
        assert_eq!(
            alice_conn.read_available(),
            b"STORED\r\nVALUE k 1\r\nv\r\nEND\r\n".to_vec()
        );
        assert_eq!(s.client_domain_info(ClientId(10)).unwrap().violations, 0);
        assert_eq!(s.client_domain_info(ClientId(11)).unwrap().violations, 1);
    }

    #[test]
    fn marginal_overflow_inside_rounding_slack_escapes_detection() {
        // Canary detection is not magic: an overflow that stays within the
        // allocator's 16-byte rounding slack is invisible — matching real
        // heap-canary semantics. Documented limitation.
        let mut s = server(Isolation::Domain);
        let response = s.handle(b"xstat 6 4\r\nblob\r\n");
        let text = String::from_utf8_lossy(&response);
        assert!(
            text.starts_with("STAT"),
            "slack overflow undetected: {text}"
        );
        assert!(s.is_alive());
    }
}
