//! The memcached-style text protocol, including the vulnerable `xstat`
//! command.

use std::fmt;

/// A parsed client command, borrowing the request buffer.
///
/// Borrowed on purpose: the serving hot path frames, classifies and
/// parses every request (sometimes more than once — framing happens per
/// pump pass), and an owned command would charge a key `String` and a
/// value `Vec` per parse. Owned copies are made only where data actually
/// crosses a boundary — [`stage_command`] copies through the domain
/// heap, exactly as the SDRaD retrofit does.
///
/// [`stage_command`]: crate::stage_command
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command<'req> {
    /// `get <key>` — look up one key.
    Get(&'req str),
    /// `set <key> <len> [ttl]` followed by `<len>` data bytes. The
    /// optional `ttl` is a logical-clock lifetime (0 = immortal, matching
    /// memcached's exptime 0).
    Set {
        /// Key to store under.
        key: &'req str,
        /// Value payload.
        value: &'req [u8],
        /// Lifetime in server ticks; `None` = immortal.
        ttl: Option<u64>,
    },
    /// `delete <key>`.
    Delete(&'req str),
    /// `stats` — server counters.
    Stats,
    /// `flush_all` — drop all entries.
    Flush,
    /// `xstat <declared> <actual>` followed by `<actual>` data bytes: an
    /// extended-stats command whose handler trusts the *declared* length —
    /// the planted memory-safety bug (cf. Memcached CVE-2011-4971 /
    /// classic length-confusion bugs).
    XStat {
        /// Length the client *claims* the blob has (trusted, unchecked).
        declared: usize,
        /// The actual blob bytes received.
        data: &'req [u8],
    },
    /// `quit` — close the session.
    Quit,
}

/// Why a request failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The request line was not a known command.
    UnknownCommand(String),
    /// A command had the wrong number or form of arguments.
    BadArguments(&'static str),
    /// The data block did not match the declared length or terminator.
    BadDataBlock,
    /// The request is incomplete — more bytes are needed (not an error;
    /// sessions wait for the rest).
    Incomplete,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownCommand(cmd) => write!(f, "unknown command `{cmd}`"),
            ProtocolError::BadArguments(what) => write!(f, "bad arguments: {what}"),
            ProtocolError::BadDataBlock => write!(f, "data block malformed"),
            ProtocolError::Incomplete => write!(f, "request incomplete"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A server response, rendered with [`Response::to_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `VALUE <key> <len>\r\n<data>\r\nEND\r\n`
    Value {
        /// The key that was found.
        key: String,
        /// Its value.
        value: Vec<u8>,
    },
    /// `END\r\n` — get miss.
    Miss,
    /// `STORED\r\n`
    Stored,
    /// `DELETED\r\n`
    Deleted,
    /// `NOT_FOUND\r\n`
    NotFound,
    /// `OK\r\n`
    Ok,
    /// Multi-line stats payload, each `STAT <name> <value>\r\n`, ending
    /// `END\r\n`.
    Stats(Vec<(String, u64)>),
    /// `ERROR\r\n` — unparseable request.
    Error,
    /// `SERVER_ERROR <msg>\r\n` — the request was understood but failed;
    /// notably the response a *contained fault* produces.
    ServerError(String),
}

impl Response {
    /// Renders the response in memcached text form.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out);
        out
    }

    /// Renders the response into an existing buffer, appending to it.
    ///
    /// Formats directly into `out` (no intermediate `String`), so callers
    /// serving the hot path can reuse response storage across requests.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        use std::io::Write as _;
        match self {
            Response::Value { key, value } => {
                // Writing into a Vec<u8> is infallible.
                let _ = write!(out, "VALUE {key} {len}\r\n", len = value.len());
                out.extend_from_slice(value);
                out.extend_from_slice(b"\r\nEND\r\n");
            }
            Response::Miss => out.extend_from_slice(b"END\r\n"),
            Response::Stored => out.extend_from_slice(b"STORED\r\n"),
            Response::Deleted => out.extend_from_slice(b"DELETED\r\n"),
            Response::NotFound => out.extend_from_slice(b"NOT_FOUND\r\n"),
            Response::Ok => out.extend_from_slice(b"OK\r\n"),
            Response::Stats(pairs) => {
                for (name, value) in pairs {
                    let _ = write!(out, "STAT {name} {value}\r\n");
                }
                out.extend_from_slice(b"END\r\n");
            }
            Response::Error => out.extend_from_slice(b"ERROR\r\n"),
            Response::ServerError(msg) => {
                let _ = write!(out, "SERVER_ERROR {msg}\r\n");
            }
        }
    }
}

/// Parses one complete request from the front of `input`.
///
/// Returns the command (borrowing `input`) and the number of bytes
/// consumed. Allocation-free on every well-formed request — only the
/// [`ProtocolError::UnknownCommand`] cold path owns its verb.
///
/// # Errors
///
/// [`ProtocolError::Incomplete`] when more bytes are needed (callers keep
/// buffering); other variants for malformed requests (callers answer
/// `ERROR` and skip the line).
pub fn parse_command(input: &[u8]) -> Result<(Command<'_>, usize), ProtocolError> {
    let line_end = input
        .iter()
        .position(|&b| b == b'\n')
        .ok_or(ProtocolError::Incomplete)?;
    let line = std::str::from_utf8(&input[..line_end])
        .map_err(|_| ProtocolError::BadArguments("request line is not UTF-8"))?
        .trim_end_matches('\r');
    let consumed_line = line_end + 1;
    let mut parts = line.split_ascii_whitespace();
    let verb = parts.next().unwrap_or("");

    match verb {
        "get" => {
            let key = parts
                .next()
                .ok_or(ProtocolError::BadArguments("get needs a key"))?;
            if parts.next().is_some() {
                return Err(ProtocolError::BadArguments("get takes one key"));
            }
            Ok((Command::Get(key), consumed_line))
        }
        "set" => {
            let key = parts
                .next()
                .ok_or(ProtocolError::BadArguments("set needs a key"))?;
            let len: usize = parts
                .next()
                .ok_or(ProtocolError::BadArguments("set needs a length"))?
                .parse()
                .map_err(|_| ProtocolError::BadArguments("set length is not a number"))?;
            let ttl = match parts.next() {
                None => None,
                Some(text) => {
                    let ticks: u64 = text
                        .parse()
                        .map_err(|_| ProtocolError::BadArguments("set ttl is not a number"))?;
                    (ticks > 0).then_some(ticks)
                }
            };
            let (value, data_consumed) = take_data_block(&input[consumed_line..], len)?;
            Ok((
                Command::Set { key, value, ttl },
                consumed_line + data_consumed,
            ))
        }
        "delete" => {
            let key = parts
                .next()
                .ok_or(ProtocolError::BadArguments("delete needs a key"))?;
            Ok((Command::Delete(key), consumed_line))
        }
        "stats" => Ok((Command::Stats, consumed_line)),
        "flush_all" => Ok((Command::Flush, consumed_line)),
        "quit" => Ok((Command::Quit, consumed_line)),
        "xstat" => {
            let declared: usize = parts
                .next()
                .ok_or(ProtocolError::BadArguments("xstat needs a declared length"))?
                .parse()
                .map_err(|_| ProtocolError::BadArguments("xstat length is not a number"))?;
            let actual: usize = parts
                .next()
                .ok_or(ProtocolError::BadArguments("xstat needs an actual length"))?
                .parse()
                .map_err(|_| ProtocolError::BadArguments("xstat length is not a number"))?;
            let (data, data_consumed) = take_data_block(&input[consumed_line..], actual)?;
            Ok((
                Command::XStat { declared, data },
                consumed_line + data_consumed,
            ))
        }
        "" => Err(ProtocolError::BadArguments("empty request line")),
        other => Err(ProtocolError::UnknownCommand(other.to_string())),
    }
}

/// Takes a `<len>` data block plus its `\r\n` terminator.
fn take_data_block(input: &[u8], len: usize) -> Result<(&[u8], usize), ProtocolError> {
    if input.len() < len + 2 {
        return Err(ProtocolError::Incomplete);
    }
    if &input[len..len + 2] != b"\r\n" {
        return Err(ProtocolError::BadDataBlock);
    }
    Ok((&input[..len], len + 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_get() {
        let (cmd, used) = parse_command(b"get mykey\r\n").unwrap();
        assert_eq!(cmd, Command::Get("mykey"));
        assert_eq!(used, 11);
    }

    #[test]
    fn parse_set_with_data_block() {
        let input = b"set k 5\r\nhello\r\nget k\r\n";
        let (cmd, used) = parse_command(input).unwrap();
        assert_eq!(
            cmd,
            Command::Set {
                key: "k",
                value: b"hello",
                ttl: None
            }
        );
        // The next command starts right after.
        let (next, _) = parse_command(&input[used..]).unwrap();
        assert_eq!(next, Command::Get("k"));
    }

    #[test]
    fn set_data_may_contain_newlines() {
        let input = b"set k 5\r\na\nb\nc\r\n";
        let (cmd, _) = parse_command(input).unwrap();
        assert_eq!(
            cmd,
            Command::Set {
                key: "k",
                value: b"a\nb\nc",
                ttl: None
            }
        );
    }

    #[test]
    fn set_accepts_an_optional_ttl() {
        let (cmd, _) = parse_command(b"set k 2 30\r\nab\r\n").unwrap();
        assert_eq!(
            cmd,
            Command::Set {
                key: "k",
                value: b"ab",
                ttl: Some(30)
            }
        );
        // TTL 0 means immortal, like memcached's exptime 0.
        let (cmd, _) = parse_command(b"set k 2 0\r\nab\r\n").unwrap();
        assert!(matches!(cmd, Command::Set { ttl: None, .. }));
        assert!(matches!(
            parse_command(b"set k 2 soon\r\nab\r\n").unwrap_err(),
            ProtocolError::BadArguments(_)
        ));
    }

    #[test]
    fn incomplete_requests_ask_for_more() {
        assert_eq!(
            parse_command(b"get ke").unwrap_err(),
            ProtocolError::Incomplete
        );
        assert_eq!(
            parse_command(b"set k 10\r\nshort\r\n").unwrap_err(),
            ProtocolError::Incomplete
        );
    }

    #[test]
    fn bad_terminator_is_rejected() {
        assert_eq!(
            parse_command(b"set k 2\r\nabXX").unwrap_err(),
            ProtocolError::BadDataBlock
        );
    }

    #[test]
    fn unknown_command_is_reported() {
        assert!(matches!(
            parse_command(b"frobnicate\r\n").unwrap_err(),
            ProtocolError::UnknownCommand(cmd) if cmd == "frobnicate"
        ));
    }

    #[test]
    fn xstat_carries_declared_and_actual() {
        let (cmd, _) = parse_command(b"xstat 4096 4\r\nboom\r\n").unwrap();
        assert_eq!(
            cmd,
            Command::XStat {
                declared: 4096,
                data: b"boom"
            }
        );
    }

    #[test]
    fn simple_commands_parse() {
        assert_eq!(parse_command(b"stats\r\n").unwrap().0, Command::Stats);
        assert_eq!(parse_command(b"flush_all\r\n").unwrap().0, Command::Flush);
        assert_eq!(parse_command(b"quit\r\n").unwrap().0, Command::Quit);
    }

    #[test]
    fn responses_render_like_memcached() {
        assert_eq!(
            Response::Value {
                key: "k".into(),
                value: b"vv".to_vec()
            }
            .to_bytes(),
            b"VALUE k 2\r\nvv\r\nEND\r\n"
        );
        assert_eq!(Response::Stored.to_bytes(), b"STORED\r\n");
        assert_eq!(
            Response::ServerError("contained fault".into()).to_bytes(),
            b"SERVER_ERROR contained fault\r\n"
        );
        let stats = Response::Stats(vec![("hits".into(), 3)]);
        assert_eq!(stats.to_bytes(), b"STAT hits 3\r\nEND\r\n");
    }

    #[test]
    fn non_utf8_request_line_is_bad_arguments() {
        assert!(matches!(
            parse_command(b"\xFF\xFE\r\n").unwrap_err(),
            ProtocolError::BadArguments(_)
        ));
    }
}
