//! The sharded LRU store and its snapshot/restore (restart) path.

use std::collections::{BTreeMap, HashMap};

/// Configuration of a [`Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Number of hash shards.
    pub shards: usize,
    /// Byte budget per shard (keys + values); LRU eviction beyond this.
    pub shard_capacity: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 8,
            shard_capacity: 16 << 20,
        }
    }
}

/// Store-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// `get` hits.
    pub hits: u64,
    /// `get` misses.
    pub misses: u64,
    /// Successful `set`s.
    pub sets: u64,
    /// Successful `delete`s.
    pub deletes: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries dropped because their TTL passed (lazy expiry).
    pub expired: u64,
    /// Entries currently stored.
    pub entries: u64,
    /// Bytes currently stored (keys + values).
    pub bytes: u64,
}

/// One LRU shard: value map plus a recency index.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<String, Entry>,
    /// Recency index: tick → key. Lowest tick = least recently used.
    order: BTreeMap<u64, String>,
    bytes: usize,
    next_tick: u64,
}

#[derive(Debug)]
struct Entry {
    value: Vec<u8>,
    tick: u64,
    /// Logical-clock deadline after which the entry is expired
    /// (`u64::MAX` = no TTL). Expiry is lazy, like memcached's.
    expires_at: u64,
}

impl Shard {
    fn touch(&mut self, key: &str) {
        let Some(entry) = self.entries.get_mut(key) else {
            return;
        };
        self.order.remove(&entry.tick);
        entry.tick = self.next_tick;
        self.order.insert(self.next_tick, key.to_string());
        self.next_tick += 1;
    }

    fn get(&mut self, key: &str, now: u64, stats: &mut StoreStats) -> Option<Vec<u8>> {
        match self.entries.get(key) {
            Some(entry) if entry.expires_at != u64::MAX && entry.expires_at <= now => {
                // Lazy expiry, memcached-style: reap on access.
                let value = self.remove(key).expect("entry exists");
                stats.entries -= 1;
                stats.bytes -= (key.len() + value.len()) as u64;
                stats.expired += 1;
                None
            }
            Some(_) => {
                self.touch(key);
                Some(self.entries[key].value.clone())
            }
            None => None,
        }
    }

    fn insert(
        &mut self,
        key: String,
        value: Vec<u8>,
        expires_at: u64,
        capacity: usize,
        stats: &mut StoreStats,
    ) {
        if let Some(old) = self.remove(&key) {
            stats.entries -= 1;
            stats.bytes -= (key.len() + old.len()) as u64;
        }
        let size = key.len() + value.len();
        self.entries.insert(
            key.clone(),
            Entry {
                value,
                tick: self.next_tick,
                expires_at,
            },
        );
        self.order.insert(self.next_tick, key);
        self.next_tick += 1;
        self.bytes += size;
        stats.entries += 1;
        stats.bytes += size as u64;

        // Evict least-recently-used entries until within budget (never the
        // entry just inserted, which has the highest tick — unless it alone
        // exceeds the budget, in which case it goes too).
        while self.bytes > capacity {
            let Some((&tick, _)) = self.order.iter().next() else {
                break;
            };
            let key = self.order.remove(&tick).expect("index consistent");
            let entry = self.entries.remove(&key).expect("entry exists");
            let freed = key.len() + entry.value.len();
            self.bytes -= freed;
            stats.entries -= 1;
            stats.bytes -= freed as u64;
            stats.evictions += 1;
        }
    }

    fn remove(&mut self, key: &str) -> Option<Vec<u8>> {
        let entry = self.entries.remove(key)?;
        self.order.remove(&entry.tick);
        self.bytes -= key.len() + entry.value.len();
        Some(entry.value)
    }
}

/// A point-in-time copy of the store's contents, the source for the
/// restart path (a real Memcached reloads from a backing database; the
/// time both take scales with the data volume, which is what experiments
/// E2/E3 measure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    entries: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// Number of entries captured.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The captured entries, borrowed — what a read-only view (a
    /// hazard-published shard snapshot) indexes without re-cloning the
    /// whole payload a second time.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.entries
            .iter()
            .map(|(key, value)| (key.as_str(), value.as_slice()))
    }

    /// Total payload bytes (keys + values) captured.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|(k, v)| (k.len() + v.len()) as u64)
            .sum()
    }
}

/// The sharded LRU cache.
#[derive(Debug)]
pub struct Store {
    config: StoreConfig,
    shards: Vec<Shard>,
    stats: StoreStats,
    /// Logical clock for TTL expiry, advanced by [`Store::advance`].
    now: u64,
}

impl Store {
    /// Creates an empty store.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero.
    #[must_use]
    pub fn new(config: StoreConfig) -> Self {
        assert!(config.shards > 0, "at least one shard required");
        Store {
            shards: (0..config.shards).map(|_| Shard::default()).collect(),
            config,
            stats: StoreStats::default(),
            now: 0,
        }
    }

    fn shard_for(&self, key: &str) -> usize {
        // FNV-1a over the key, reduced to shard count.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in key.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        (hash % self.shards.len() as u64) as usize
    }

    /// Looks up `key`, refreshing its recency. Entries whose TTL passed
    /// are reaped lazily and reported as misses.
    pub fn get(&mut self, key: &str) -> Option<Vec<u8>> {
        let shard = self.shard_for(key);
        let now = self.now;
        let result = self.shards[shard].get(key, now, &mut self.stats);
        if result.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        result
    }

    /// Inserts or replaces `key` with no TTL, evicting LRU entries past
    /// the budget.
    pub fn set(&mut self, key: impl Into<String>, value: Vec<u8>) {
        self.set_with_ttl(key, value, None);
    }

    /// Inserts or replaces `key`; `ttl` is a logical-clock lifetime (see
    /// [`advance`](Self::advance)), `None` for immortal entries.
    pub fn set_with_ttl(&mut self, key: impl Into<String>, value: Vec<u8>, ttl: Option<u64>) {
        let key = key.into();
        let shard = self.shard_for(&key);
        let capacity = self.config.shard_capacity;
        let expires_at = match ttl {
            Some(ticks) => self.now.saturating_add(ticks),
            None => u64::MAX,
        };
        let stats = &mut self.stats;
        self.shards[shard].insert(key, value, expires_at, capacity, stats);
        self.stats.sets += 1;
    }

    /// Advances the logical TTL clock by `ticks`. Servers call this once
    /// per request (or per second of wall time, at their choice of
    /// resolution).
    pub fn advance(&mut self, ticks: u64) {
        self.now = self.now.saturating_add(ticks);
    }

    /// The current logical time.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Removes `key`, returning whether it existed.
    pub fn delete(&mut self, key: &str) -> bool {
        let shard = self.shard_for(key);
        if let Some(value) = self.shards[shard].remove(key) {
            self.stats.entries -= 1;
            self.stats.bytes -= (key.len() + value.len()) as u64;
            self.stats.deletes += 1;
            true
        } else {
            false
        }
    }

    /// Drops every entry.
    pub fn flush(&mut self) {
        for shard in &mut self.shards {
            *shard = Shard::default();
        }
        self.stats.entries = 0;
        self.stats.bytes = 0;
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Entries currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stats.entries as usize
    }

    /// Whether the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stats.entries == 0
    }

    /// Captures the full contents (ordered by shard, then arbitrarily).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut entries = Vec::with_capacity(self.len());
        for shard in &self.shards {
            for (key, entry) in &shard.entries {
                entries.push((key.clone(), entry.value.clone()));
            }
        }
        Snapshot { entries }
    }

    /// The restart path: rebuilds a fresh store from a snapshot. The cost
    /// of this call is what a process/container restart pays *on top of*
    /// its fixed startup cost, and it scales linearly with data volume.
    #[must_use]
    pub fn restore(config: StoreConfig, snapshot: &Snapshot) -> Self {
        let mut store = Store::new(config);
        for (key, value) in &snapshot.entries {
            store.set(key.clone(), value.clone());
        }
        // Rebuilding is not client traffic: reset the activity counters.
        let preserved_entries = store.stats.entries;
        let preserved_bytes = store.stats.bytes;
        store.stats = StoreStats {
            entries: preserved_entries,
            bytes: preserved_bytes,
            ..StoreStats::default()
        };
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_store(shard_capacity: usize) -> Store {
        Store::new(StoreConfig {
            shards: 2,
            shard_capacity,
        })
    }

    #[test]
    fn set_get_delete_cycle() {
        let mut store = small_store(1024);
        store.set("k1", b"v1".to_vec());
        assert_eq!(store.get("k1"), Some(b"v1".to_vec()));
        assert!(store.delete("k1"));
        assert_eq!(store.get("k1"), None);
        assert!(!store.delete("k1"));
    }

    #[test]
    fn replacement_updates_bytes() {
        let mut store = small_store(1024);
        store.set("key", vec![0u8; 100]);
        store.set("key", vec![0u8; 10]);
        assert_eq!(store.stats().entries, 1);
        assert_eq!(store.stats().bytes, (3 + 10) as u64);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut store = Store::new(StoreConfig {
            shards: 1,
            shard_capacity: 30,
        });
        store.set("a", vec![0u8; 9]); // 10 bytes
        store.set("b", vec![0u8; 9]); // 10 bytes
        store.set("c", vec![0u8; 9]); // 10 bytes -> exactly at budget
        let _ = store.get("a"); // refresh a; b becomes LRU
        store.set("d", vec![0u8; 9]); // evicts b
        assert!(store.get("b").is_none());
        assert!(store.get("a").is_some());
        assert!(store.get("c").is_some());
        assert!(store.get("d").is_some());
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut store = Store::new(StoreConfig {
            shards: 1,
            shard_capacity: 100,
        });
        for i in 0..50 {
            store.set(format!("key-{i}"), vec![0u8; 20]);
            assert!(store.stats().bytes <= 100, "budget violated");
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut store = small_store(1024);
        store.set("present", b"x".to_vec());
        let _ = store.get("present");
        let _ = store.get("absent");
        assert_eq!(store.stats().hits, 1);
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn snapshot_restore_preserves_contents() {
        let mut store = small_store(1 << 20);
        for i in 0..100 {
            store.set(format!("key-{i}"), format!("value-{i}").into_bytes());
        }
        let snapshot = store.snapshot();
        assert_eq!(snapshot.len(), 100);

        let mut restored = Store::restore(
            StoreConfig {
                shards: 2,
                shard_capacity: 1 << 20,
            },
            &snapshot,
        );
        for i in 0..100 {
            assert_eq!(
                restored.get(&format!("key-{i}")),
                Some(format!("value-{i}").into_bytes())
            );
        }
        assert_eq!(restored.stats().sets, 0, "rebuild is not client traffic");
    }

    #[test]
    fn snapshot_reports_bytes() {
        let mut store = small_store(1 << 20);
        store.set("ab", vec![0u8; 8]);
        assert_eq!(store.snapshot().bytes(), 10);
    }

    #[test]
    fn flush_clears_everything() {
        let mut store = small_store(1024);
        store.set("a", b"1".to_vec());
        store.set("b", b"2".to_vec());
        store.flush();
        assert!(store.is_empty());
        assert_eq!(store.get("a"), None);
    }

    #[test]
    fn ttl_expires_entries_lazily() {
        let mut store = small_store(1024);
        store.set_with_ttl("short", b"v".to_vec(), Some(5));
        store.set_with_ttl("long", b"v".to_vec(), Some(100));
        store.set("immortal", b"v".to_vec());

        store.advance(4);
        assert!(store.get("short").is_some(), "not yet expired");

        store.advance(1); // now = 5 = deadline
        assert!(store.get("short").is_none(), "expired at deadline");
        assert!(store.get("long").is_some());
        assert!(store.get("immortal").is_some());
        assert_eq!(store.stats().expired, 1);
        assert_eq!(store.stats().entries, 2, "expired entry reaped");
    }

    #[test]
    fn replacing_an_entry_resets_its_ttl() {
        let mut store = small_store(1024);
        store.set_with_ttl("k", b"old".to_vec(), Some(2));
        store.advance(1);
        store.set_with_ttl("k", b"new".to_vec(), Some(10));
        store.advance(5);
        assert_eq!(store.get("k"), Some(b"new".to_vec()));
    }

    #[test]
    fn expired_entries_free_their_bytes() {
        let mut store = small_store(1024);
        store.set_with_ttl("big", vec![0u8; 100], Some(1));
        let before = store.stats().bytes;
        store.advance(2);
        assert!(store.get("big").is_none());
        assert_eq!(store.stats().bytes, before - 103);
    }

    #[test]
    fn ttl_overflow_saturates_to_immortal() {
        let mut store = small_store(1024);
        store.advance(u64::MAX - 1);
        store.set_with_ttl("k", b"v".to_vec(), Some(u64::MAX));
        store.advance(1);
        assert!(store.get("k").is_some(), "saturating deadline");
    }

    #[test]
    fn keys_distribute_across_shards() {
        let mut store = Store::new(StoreConfig {
            shards: 8,
            shard_capacity: 1 << 20,
        });
        for i in 0..1000 {
            store.set(format!("key-{i}"), vec![0u8; 4]);
        }
        let populated = store
            .shards
            .iter()
            .filter(|s| !s.entries.is_empty())
            .count();
        assert!(populated >= 6, "only {populated}/8 shards used");
    }
}
