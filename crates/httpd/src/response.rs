//! HTTP response construction.

use std::fmt;

/// Response status codes the server emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// 200
    Ok,
    /// 201
    Created,
    /// 400 — includes contained decoder faults.
    BadRequest,
    /// 404
    NotFound,
    /// 405
    MethodNotAllowed,
    /// 500 — internal errors that are *not* contained faults.
    InternalServerError,
    /// 503 — the (unprotected) server has crashed.
    ServiceUnavailable,
}

impl Status {
    /// Numeric code.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::Created => 201,
            Status::BadRequest => 400,
            Status::NotFound => 404,
            Status::MethodNotAllowed => 405,
            Status::InternalServerError => 500,
            Status::ServiceUnavailable => 503,
        }
    }

    /// Reason phrase.
    #[must_use]
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::Created => "Created",
            Status::BadRequest => "Bad Request",
            Status::NotFound => "Not Found",
            Status::MethodNotAllowed => "Method Not Allowed",
            Status::InternalServerError => "Internal Server Error",
            Status::ServiceUnavailable => "Service Unavailable",
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.reason())
    }
}

/// A response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    status: Status,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl HttpResponse {
    /// Starts a response with the given status.
    #[must_use]
    pub fn new(status: Status) -> Self {
        HttpResponse {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Convenience: a text response.
    #[must_use]
    pub fn text(status: Status, body: impl Into<String>) -> Self {
        HttpResponse::new(status)
            .header("Content-Type", "text/plain")
            .body(body.into().into_bytes())
    }

    /// Adds a header (builder-style).
    #[must_use]
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Sets the body (builder-style); `Content-Length` is added on render.
    #[must_use]
    pub fn body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// The status.
    #[must_use]
    pub fn status(&self) -> Status {
        self.status
    }

    /// Serializes the response.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out);
        out
    }

    /// Serializes the response into an existing buffer, appending to it.
    ///
    /// Formats directly into `out` (no intermediate `String`), so the
    /// serving hot path can reuse response storage across requests.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        use std::io::Write as _;
        // Writing into a Vec<u8> is infallible.
        let _ = write!(out, "HTTP/1.1 {}\r\n", self.status);
        for (name, value) in &self.headers {
            let _ = write!(out, "{name}: {value}\r\n");
        }
        let _ = write!(out, "Content-Length: {}\r\n\r\n", self.body.len());
        out.extend_from_slice(&self.body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_status_line_headers_and_body() {
        let response = HttpResponse::new(Status::Ok)
            .header("Content-Type", "text/html")
            .body(b"<p>x</p>".to_vec());
        let text = String::from_utf8(response.to_bytes()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: text/html\r\n"));
        assert!(text.contains("Content-Length: 8\r\n\r\n<p>x</p>"));
    }

    #[test]
    fn text_helper_sets_type() {
        let response = HttpResponse::text(Status::NotFound, "nope");
        let text = String::from_utf8(response.to_bytes()).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found"));
        assert!(text.contains("text/plain"));
        assert!(text.ends_with("nope"));
    }

    #[test]
    fn status_codes_are_correct() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::BadRequest.code(), 400);
        assert_eq!(Status::ServiceUnavailable.code(), 503);
    }

    #[test]
    fn empty_body_has_zero_content_length() {
        let text = String::from_utf8(HttpResponse::new(Status::Ok).to_bytes()).unwrap();
        assert!(text.contains("Content-Length: 0\r\n\r\n"));
    }
}
