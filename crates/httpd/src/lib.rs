//! # sdrad-httpd — an NGINX-like HTTP server as SDRaD workload
//!
//! The second evaluation target of the paper. A small but real HTTP/1.1
//! server: request parsing, a static-content store, and a chunked
//! transfer-encoding decoder with a planted length-confusion bug (the
//! class of bug behind e.g. CVE-2013-2028 in nginx's chunked parser).
//!
//! Like `sdrad-kvstore`, the server runs in one of two modes:
//! [`Isolation::None`], where triggering the bug kills the process, and
//! [`Isolation::Domain`], where the decoder runs inside an SDRaD domain
//! and the fault is rewound into a `400 Bad Request`.
//!
//! ## Example
//!
//! ```
//! use sdrad_httpd::{HttpServer, Isolation};
//!
//! let mut server = HttpServer::new(Isolation::Domain).unwrap();
//! server.publish("/index.html", "text/html", b"<h1>hi</h1>".to_vec());
//!
//! let response = server.handle(b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n");
//! assert!(response.starts_with(b"HTTP/1.1 200 OK"));
//!
//! // The chunked exploit (declared chunk size >> actual) is contained:
//! let exploit = b"POST /upload HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nfff\r\nhi\r\n0\r\n\r\n";
//! let response = server.handle(exploit);
//! assert!(response.starts_with(b"HTTP/1.1 400"));
//! assert!(server.is_alive());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod request;
mod response;
mod server;

pub use request::{parse_request, HttpError, HttpRequest, Method};
pub use response::{HttpResponse, Status};
pub use server::{
    decode_chunked_in_domain, decode_chunked_unprotected, HttpServer, HttpSession, HttpStats,
    Isolation,
};
