//! HTTP/1.1 request parsing.

use std::fmt;

/// HTTP request methods the server understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// `GET`
    Get,
    /// `HEAD`
    Head,
    /// `POST`
    Post,
    /// `PUT`
    Put,
    /// `DELETE`
    Delete,
}

impl Method {
    /// Parses a method token.
    #[must_use]
    pub fn parse(token: &str) -> Option<Method> {
        match token {
            "GET" => Some(Method::Get),
            "HEAD" => Some(Method::Head),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        };
        f.write_str(text)
    }
}

/// Parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// More bytes are needed (sessions keep buffering).
    Incomplete,
    /// The request violates HTTP framing; answer 400 and close.
    Malformed(&'static str),
    /// Headers exceed the configured limit (DoS guard).
    TooLarge,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Incomplete => write!(f, "request incomplete"),
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::TooLarge => write!(f, "request too large"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Maximum bytes of request head (request line + headers) accepted.
const MAX_HEAD: usize = 16 * 1024;

/// Maximum body bytes accepted via `Content-Length`.
const MAX_BODY: usize = 4 * 1024 * 1024;

/// A parsed request.
///
/// For chunked requests the body holds the *raw, undecoded* chunked
/// stream; decoding — the vulnerable operation — is the server's job so
/// that it can run under isolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method.
    pub method: Method,
    /// Request target (path, no normalization beyond percent-free check).
    pub path: String,
    /// Header name/value pairs, in order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body bytes: literal for `Content-Length`, raw chunk stream for
    /// `Transfer-Encoding: chunked`.
    pub body: Vec<u8>,
    /// Whether the body is a raw chunked stream.
    pub chunked: bool,
}

impl HttpRequest {
    /// First value of header `name` (case-insensitive), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses one complete request from the front of `input`, returning it and
/// the bytes consumed.
///
/// # Errors
///
/// [`HttpError::Incomplete`] until a full request is buffered;
/// [`HttpError::Malformed`] / [`HttpError::TooLarge`] for invalid input.
pub fn parse_request(input: &[u8]) -> Result<(HttpRequest, usize), HttpError> {
    let head_end = find_head_end(input)?;
    let head = std::str::from_utf8(&input[..head_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");

    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = request_line.split(' ');
    let method =
        Method::parse(parts.next().unwrap_or("")).ok_or(HttpError::Malformed("unknown method"))?;
    let path = parts
        .next()
        .ok_or(HttpError::Malformed("missing request target"))?;
    if !path.starts_with('/') {
        return Err(HttpError::Malformed("request target must be absolute path"));
    }
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing HTTP version"))?;
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    if parts.next().is_some() {
        return Err(HttpError::Malformed("garbage after HTTP version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed("invalid header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let request_so_far = HttpRequest {
        method,
        path: path.to_string(),
        headers,
        body: Vec::new(),
        chunked: false,
    };
    let body_start = head_end + 4;

    let chunked = request_so_far
        .header("transfer-encoding")
        .is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
    if chunked {
        // Capture the raw chunk stream up to the terminating 0-chunk.
        let raw = &input[body_start.min(input.len())..];
        let chunked_len = raw_chunked_len(raw)?;
        let mut request = request_so_far;
        request.body = raw[..chunked_len].to_vec();
        request.chunked = true;
        return Ok((request, body_start + chunked_len));
    }

    let content_length = match request_so_far.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("content-length is not a number"))?,
        None => 0,
    };
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge);
    }
    if input.len() < body_start + content_length {
        return Err(HttpError::Incomplete);
    }
    let mut request = request_so_far;
    request.body = input[body_start..body_start + content_length].to_vec();
    Ok((request, body_start + content_length))
}

/// Finds the end of the head (`\r\n\r\n`), enforcing the size limit.
fn find_head_end(input: &[u8]) -> Result<usize, HttpError> {
    let limit = input.len().min(MAX_HEAD);
    if let Some(pos) = input[..limit].windows(4).position(|w| w == b"\r\n\r\n") {
        return Ok(pos);
    }
    if input.len() >= MAX_HEAD {
        return Err(HttpError::TooLarge);
    }
    Err(HttpError::Incomplete)
}

/// Computes the byte length of a raw chunked stream (through the final
/// `0\r\n\r\n`), using only *framing* — it does not trust the size fields
/// beyond navigation, and rejects streams whose declared sizes leave the
/// buffer. (The *vulnerable* trusting decode lives in the server.)
fn raw_chunked_len(raw: &[u8]) -> Result<usize, HttpError> {
    let mut pos = 0;
    loop {
        let line_end = raw[pos..]
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or(HttpError::Incomplete)?;
        let size_text = std::str::from_utf8(&raw[pos..pos + line_end])
            .map_err(|_| HttpError::Malformed("chunk size is not UTF-8"))?;
        let size = usize::from_str_radix(size_text.trim(), 16)
            .map_err(|_| HttpError::Malformed("chunk size is not hex"))?;
        pos += line_end + 2;
        if size == 0 {
            // Expect trailing CRLF after the zero chunk.
            if raw.len() < pos + 2 {
                return Err(HttpError::Incomplete);
            }
            if &raw[pos..pos + 2] != b"\r\n" {
                return Err(HttpError::Malformed("missing final CRLF"));
            }
            return Ok(pos + 2);
        }
        // For *framing*, chunk data runs to the next CRLF or the declared
        // size, whichever comes first. This keeps benign streams exact and
        // lets lying streams (declared ≫ actual) still frame as a request
        // — so the exploit payload reaches the vulnerable decoder, where
        // trusting the declared size is the planted bug. (Simplification:
        // chunk payloads containing literal CRLF are not supported.)
        let until_crlf = raw[pos..]
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or(HttpError::Incomplete)?;
        pos += size.min(until_crlf);
        if raw.len() < pos + 2 {
            return Err(HttpError::Incomplete);
        }
        if &raw[pos..pos + 2] == b"\r\n" {
            pos += 2;
        } else {
            // Declared size smaller than the data line: resynchronise.
            let next = raw[pos..]
                .windows(2)
                .position(|w| w == b"\r\n")
                .ok_or(HttpError::Incomplete)?;
            pos += next + 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_get() {
        let input = b"GET /index.html HTTP/1.1\r\nHost: example\r\nAccept: */*\r\n\r\n";
        let (req, used) = parse_request(input).unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/index.html");
        assert_eq!(req.header("host"), Some("example"));
        assert_eq!(req.header("HOST"), Some("example"), "case-insensitive");
        assert_eq!(used, input.len());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_content_length() {
        let input = b"POST /echo HTTP/1.1\r\nContent-Length: 4\r\n\r\nbodyNEXT";
        let (req, used) = parse_request(input).unwrap();
        assert_eq!(req.body, b"body");
        assert_eq!(&input[used..], b"NEXT");
    }

    #[test]
    fn incomplete_requests_buffer() {
        assert_eq!(
            parse_request(b"GET / HT").unwrap_err(),
            HttpError::Incomplete
        );
        assert_eq!(
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").unwrap_err(),
            HttpError::Incomplete
        );
    }

    #[test]
    fn malformed_requests_are_rejected() {
        let cases: &[&[u8]] = &[
            b"BREW /pot HTTP/1.1\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Header Name: x\r\n\r\n",
            b"GET / HTTP/1.1\r\nnocolon\r\n\r\n",
        ];
        for case in cases {
            assert!(
                matches!(parse_request(case), Err(HttpError::Malformed(_))),
                "accepted: {}",
                String::from_utf8_lossy(case)
            );
        }
    }

    #[test]
    fn oversized_head_is_too_large() {
        let mut input = b"GET / HTTP/1.1\r\n".to_vec();
        while input.len() < 17 * 1024 {
            input.extend_from_slice(b"X-Filler: aaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        assert_eq!(parse_request(&input).unwrap_err(), HttpError::TooLarge);
    }

    #[test]
    fn oversized_content_length_is_too_large() {
        let input = b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        assert_eq!(parse_request(input).unwrap_err(), HttpError::TooLarge);
    }

    #[test]
    fn chunked_body_is_captured_raw() {
        let input =
            b"POST /upload HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";
        let (req, used) = parse_request(input).unwrap();
        assert!(req.chunked);
        assert_eq!(req.body, b"4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n");
        assert_eq!(used, input.len());
    }

    #[test]
    fn chunked_with_lying_size_still_parses_for_the_decoder() {
        // Declared size fff (4095) but only 2 bytes present: framing
        // resynchronises so the request reaches the vulnerable decoder.
        let input =
            b"POST /upload HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nfff\r\nhi\r\n0\r\n\r\n";
        let (req, _) = parse_request(input).unwrap();
        assert!(req.chunked);
        assert!(!req.body.is_empty());
    }

    #[test]
    fn chunked_incomplete_waits() {
        let input = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWi";
        assert_eq!(parse_request(input).unwrap_err(), HttpError::Incomplete);
    }

    #[test]
    fn bad_chunk_size_is_malformed() {
        let input = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\nhi\r\n0\r\n\r\n";
        assert!(matches!(parse_request(input), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn methods_display_round_trip() {
        for m in [
            Method::Get,
            Method::Head,
            Method::Post,
            Method::Put,
            Method::Delete,
        ] {
            assert_eq!(Method::parse(&m.to_string()), Some(m));
        }
        assert_eq!(Method::parse("PATCH"), None);
    }
}
