//! The HTTP server with optional SDRaD isolation of the request pipeline.

use std::collections::HashMap;

use sdrad::{DomainConfig, DomainEnv, DomainError, DomainId, DomainManager, DomainPolicy};

use crate::{parse_request, HttpError, HttpRequest, HttpResponse, Method, Status};

/// How request processing is isolated (mirrors `sdrad-kvstore`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isolation {
    /// Unprotected: the chunked-decoder bug crashes the server.
    None,
    /// SDRaD: the decoder runs in a domain; the bug becomes a 400.
    Domain,
}

/// Server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HttpStats {
    /// Requests processed (any outcome).
    pub requests: u64,
    /// 2xx responses.
    pub ok: u64,
    /// 4xx responses.
    pub client_errors: u64,
    /// Faults contained by a rewind.
    pub contained_faults: u64,
    /// Fatal crashes (unprotected mode).
    pub crashes: u64,
}

/// A static-content HTTP server with an upload endpoint whose chunked
/// decoder carries the planted bug.
///
/// Routes:
/// * `GET <path>` — published static content,
/// * `POST /echo` — echoes a `Content-Length` body,
/// * `POST /upload` — decodes a chunked body (vulnerable decoder).
#[derive(Debug)]
pub struct HttpServer {
    content: HashMap<String, (String, Vec<u8>)>,
    isolation: Isolation,
    mgr: Option<DomainManager>,
    domain: Option<DomainId>,
    stats: HttpStats,
    crashed: bool,
}

impl HttpServer {
    /// Creates a server in the given isolation mode.
    ///
    /// # Errors
    ///
    /// [`DomainError`] if the isolation domain cannot be created.
    pub fn new(isolation: Isolation) -> Result<Self, DomainError> {
        let (mgr, domain) = match isolation {
            Isolation::None => (None, None),
            Isolation::Domain => {
                let mut mgr = DomainManager::new();
                let domain = mgr.create_domain(
                    DomainConfig::new("http-request")
                        .heap_capacity(8 << 20)
                        .policy(DomainPolicy::Integrity),
                )?;
                (Some(mgr), Some(domain))
            }
        };
        Ok(HttpServer {
            content: HashMap::new(),
            isolation,
            mgr,
            domain,
            stats: HttpStats::default(),
            crashed: false,
        })
    }

    /// Publishes static content at `path`.
    pub fn publish(&mut self, path: impl Into<String>, content_type: &str, body: Vec<u8>) {
        self.content
            .insert(path.into(), (content_type.to_string(), body));
    }

    /// Whether the server is alive (see `sdrad-kvstore` for semantics).
    #[must_use]
    pub fn is_alive(&self) -> bool {
        !self.crashed
    }

    /// Brings a crashed server back up (static content survives — it
    /// would be reloaded from disk; the *cost* of that reload is modeled
    /// by the experiment harness, not here).
    pub fn restart(&mut self) {
        self.crashed = false;
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> HttpStats {
        self.stats
    }

    /// The configured isolation mode.
    #[must_use]
    pub fn isolation(&self) -> Isolation {
        self.isolation
    }

    /// Parses and serves one request; returns raw response bytes (empty if
    /// the server is dead).
    pub fn handle(&mut self, raw: &[u8]) -> Vec<u8> {
        if self.crashed {
            return Vec::new();
        }
        match parse_request(raw) {
            Ok((request, _consumed)) => self.respond(&request).to_bytes(),
            Err(HttpError::Incomplete) => Vec::new(),
            Err(HttpError::TooLarge) => {
                self.stats.client_errors += 1;
                HttpResponse::text(Status::BadRequest, "request too large").to_bytes()
            }
            Err(HttpError::Malformed(why)) => {
                self.stats.client_errors += 1;
                HttpResponse::text(Status::BadRequest, why).to_bytes()
            }
        }
    }

    /// Serves a parsed request.
    pub fn respond(&mut self, request: &HttpRequest) -> HttpResponse {
        self.stats.requests += 1;
        let response = match (request.method, request.path.as_str()) {
            (Method::Get | Method::Head, path) => match self.content.get(path) {
                Some((content_type, body)) => {
                    let body = if request.method == Method::Head {
                        Vec::new()
                    } else {
                        body.clone()
                    };
                    HttpResponse::new(Status::Ok)
                        .header("Content-Type", content_type.clone())
                        .body(body)
                }
                None => HttpResponse::text(Status::NotFound, "not found"),
            },
            (Method::Post, "/echo") => HttpResponse::new(Status::Ok)
                .header("Content-Type", "application/octet-stream")
                .body(request.body.clone()),
            (Method::Post, "/upload") if request.chunked => self.decode_upload(&request.body),
            (Method::Post, "/upload") => HttpResponse::new(Status::Created)
                .body(format!("{} bytes", request.body.len()).into_bytes()),
            _ => HttpResponse::text(Status::MethodNotAllowed, "unsupported"),
        };
        match response.status().code() {
            200..=299 => self.stats.ok += 1,
            400..=499 => self.stats.client_errors += 1,
            _ => {}
        }
        response
    }

    /// Runs the vulnerable chunked decoder under the configured isolation.
    fn decode_upload(&mut self, raw_chunks: &[u8]) -> HttpResponse {
        match self.isolation {
            Isolation::None => match decode_chunked_unprotected(raw_chunks) {
                Some(decoded) => HttpResponse::new(Status::Created)
                    .body(format!("{} bytes", decoded.len()).into_bytes()),
                None => {
                    self.crashed = true;
                    self.stats.crashes += 1;
                    HttpResponse::text(Status::ServiceUnavailable, "server crashed")
                }
            },
            Isolation::Domain => {
                let mgr = self.mgr.as_mut().expect("domain mode has a manager");
                let domain = self.domain.expect("domain mode has a domain");
                let raw = raw_chunks.to_vec();
                match mgr.call(domain, move |env| decode_chunked_in_domain(env, &raw)) {
                    Ok(decoded_len) => HttpResponse::new(Status::Created)
                        .body(format!("{decoded_len} bytes").into_bytes()),
                    Err(DomainError::Violation { fault, .. }) => {
                        self.stats.contained_faults += 1;
                        HttpResponse::text(
                            Status::BadRequest,
                            format!("contained: {}", fault.kind()),
                        )
                    }
                    Err(other) => HttpResponse::text(
                        Status::InternalServerError,
                        format!("isolation error: {other}"),
                    ),
                }
            }
        }
    }
}

/// A buffered per-connection session pump over an `sdrad-net` endpoint,
/// mirroring `sdrad_kvstore::Session` for the HTTP side.
#[derive(Debug)]
pub struct HttpSession {
    endpoint: sdrad_net::Endpoint,
    buffer: Vec<u8>,
}

impl HttpSession {
    /// Wraps an accepted connection.
    #[must_use]
    pub fn new(endpoint: sdrad_net::Endpoint) -> Self {
        HttpSession {
            endpoint,
            buffer: Vec::new(),
        }
    }

    /// Pumps pending requests through `server`; returns how many were
    /// completed this call. Incomplete requests stay buffered; malformed
    /// ones get a 400 and the connection buffer is dropped (HTTP framing
    /// cannot be resynchronised reliably).
    pub fn poll(&mut self, server: &mut HttpServer) -> usize {
        self.buffer.extend(self.endpoint.read_available());
        let mut completed = 0;
        loop {
            if !server.is_alive() {
                return completed;
            }
            match parse_request(&self.buffer) {
                Ok((request, consumed)) => {
                    self.buffer.drain(..consumed);
                    let response = server.respond(&request);
                    self.endpoint.write(&response.to_bytes());
                    completed += 1;
                }
                Err(HttpError::Incomplete) => return completed,
                Err(HttpError::TooLarge) | Err(HttpError::Malformed(_)) => {
                    self.buffer.clear();
                    self.endpoint
                        .write(&HttpResponse::text(Status::BadRequest, "bad request").to_bytes());
                    completed += 1;
                }
            }
        }
    }

    /// The underlying endpoint.
    #[must_use]
    pub fn endpoint(&self) -> &sdrad_net::Endpoint {
        &self.endpoint
    }
}

/// Walks a raw chunk stream, yielding `(declared_size, actual_data)` per
/// chunk. Framing only; trusting `declared_size` is the decoder's bug.
fn chunks(raw: &[u8]) -> impl Iterator<Item = (usize, &[u8])> {
    let mut pos = 0;
    std::iter::from_fn(move || {
        let line_end = raw[pos..].windows(2).position(|w| w == b"\r\n")?;
        let size = usize::from_str_radix(
            std::str::from_utf8(&raw[pos..pos + line_end]).ok()?.trim(),
            16,
        )
        .ok()?;
        pos += line_end + 2;
        if size == 0 {
            return None;
        }
        let data_start = pos;
        // Data runs to the next CRLF (actual bytes present, which may be
        // fewer than declared).
        let data_len = raw[pos..]
            .windows(2)
            .position(|w| w == b"\r\n")
            .unwrap_or(raw.len() - pos);
        pos += data_len + 2.min(raw.len() - pos - data_len);
        Some((size, &raw[data_start..data_start + data_len]))
    })
}

/// The unprotected decoder: copies `declared` bytes per chunk into its
/// assembly buffer. `None` models the fatal overflow (the nginx
/// CVE-2013-2028 shape). Public so external executors (`sdrad-runtime`
/// workers) run the identical baseline path.
pub fn decode_chunked_unprotected(raw: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    for (declared, data) in chunks(raw) {
        if declared > data.len() {
            return None; // SIGSEGV
        }
        out.extend_from_slice(&data[..declared]);
    }
    Some(out)
}

/// The same decoder running on domain memory: the oversized copy smashes
/// heap canaries or leaves the heap region, faults, and is rewound.
/// Public so executors that own their own `DomainManager` (per-worker
/// managers in `sdrad-runtime`) run the identical vulnerable workload.
pub fn decode_chunked_in_domain(env: &mut DomainEnv<'_>, raw: &[u8]) -> usize {
    let mut total = 0usize;
    for (declared, data) in chunks(raw) {
        let buffer = env.push_bytes(data);
        // BUG: writes `declared` bytes into a buffer sized for the actual
        // data received.
        let staging = vec![0x5Au8; declared];
        env.write(buffer, &staging);
        env.free(buffer); // free() re-verifies the canaries
        total += declared;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXPLOIT: &[u8] =
        b"POST /upload HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nfff\r\nhi\r\n0\r\n\r\n";
    const BENIGN_UPLOAD: &[u8] =
        b"POST /upload HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";

    fn server(isolation: Isolation) -> HttpServer {
        let mut s = HttpServer::new(isolation).unwrap();
        s.publish("/", "text/html", b"<h1>home</h1>".to_vec());
        s.publish(
            "/static/app.js",
            "text/javascript",
            b"console.log(1)".to_vec(),
        );
        s
    }

    #[test]
    fn serves_static_content() {
        let mut s = server(Isolation::Domain);
        let response = s.handle(b"GET /static/app.js HTTP/1.1\r\nHost: x\r\n\r\n");
        let text = String::from_utf8(response).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.ends_with("console.log(1)"));
    }

    #[test]
    fn head_omits_the_body() {
        let mut s = server(Isolation::None);
        let response = s.handle(b"HEAD / HTTP/1.1\r\nHost: x\r\n\r\n");
        let text = String::from_utf8(response).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.contains("Content-Length: 0"));
    }

    #[test]
    fn missing_content_is_404() {
        let mut s = server(Isolation::Domain);
        let response = s.handle(b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(response.starts_with(b"HTTP/1.1 404"));
        assert_eq!(s.stats().client_errors, 1);
    }

    #[test]
    fn echo_round_trips_body() {
        let mut s = server(Isolation::Domain);
        let response = s.handle(b"POST /echo HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        assert!(String::from_utf8_lossy(&response).ends_with("hello"));
    }

    #[test]
    fn benign_chunked_upload_succeeds_in_both_modes() {
        for isolation in [Isolation::None, Isolation::Domain] {
            let mut s = server(isolation);
            let response = s.handle(BENIGN_UPLOAD);
            let text = String::from_utf8_lossy(&response).into_owned();
            assert!(text.starts_with("HTTP/1.1 201"), "{isolation:?}: {text}");
            assert!(text.ends_with("9 bytes"), "{isolation:?}: {text}");
            assert!(s.is_alive());
        }
    }

    #[test]
    fn exploit_kills_unprotected_server() {
        let mut s = server(Isolation::None);
        let response = s.handle(EXPLOIT);
        assert!(response.starts_with(b"HTTP/1.1 503"));
        assert!(!s.is_alive());
        assert_eq!(s.stats().crashes, 1);
        assert!(s.handle(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").is_empty());
    }

    #[test]
    fn exploit_is_contained_by_domain() {
        let mut s = server(Isolation::Domain);
        let response = s.handle(EXPLOIT);
        let text = String::from_utf8_lossy(&response).into_owned();
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        assert!(text.contains("contained"), "{text}");
        assert!(s.is_alive());
        assert_eq!(s.stats().contained_faults, 1);
        // Still serving.
        let ok = s.handle(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(ok.starts_with(b"HTTP/1.1 200"));
    }

    #[test]
    fn sustained_attack_is_absorbed() {
        let mut s = server(Isolation::Domain);
        for _ in 0..30 {
            let response = s.handle(EXPLOIT);
            assert!(response.starts_with(b"HTTP/1.1 400"));
        }
        assert_eq!(s.stats().contained_faults, 30);
        assert!(s.is_alive());
    }

    #[test]
    fn restart_revives_unprotected_server() {
        let mut s = server(Isolation::None);
        s.handle(EXPLOIT);
        assert!(!s.is_alive());
        s.restart();
        let ok = s.handle(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(ok.starts_with(b"HTTP/1.1 200"));
    }

    #[test]
    fn malformed_request_is_400_not_crash() {
        let mut s = server(Isolation::None);
        let response = s.handle(b"NOPE / HTTP/1.1\r\n\r\n");
        assert!(response.starts_with(b"HTTP/1.1 400"));
        assert!(s.is_alive());
    }

    #[test]
    fn http_session_pumps_pipelined_requests() {
        let listener = sdrad_net::Listener::new();
        let mut client = listener.connect();
        let mut session = HttpSession::new(listener.accept().unwrap());
        let mut s = server(Isolation::Domain);

        client.write(b"GET / HTTP/1.1\r\nHost: a\r\n\r\nGET /nope HTTP/1.1\r\nHost: a\r\n\r\n");
        assert_eq!(session.poll(&mut s), 2);
        let text = String::from_utf8(client.read_available()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.contains("HTTP/1.1 404"));
    }

    #[test]
    fn http_session_buffers_partial_heads() {
        let listener = sdrad_net::Listener::new();
        let mut client = listener.connect();
        let mut session = HttpSession::new(listener.accept().unwrap());
        let mut s = server(Isolation::None);

        client.write(b"GET / HTTP/1.1\r\nHo");
        assert_eq!(session.poll(&mut s), 0);
        client.write(b"st: a\r\n\r\n");
        assert_eq!(session.poll(&mut s), 1);
        assert!(client.read_available().starts_with(b"HTTP/1.1 200"));
    }

    #[test]
    fn http_session_survives_exploit_traffic() {
        let listener = sdrad_net::Listener::new();
        let mut client = listener.connect();
        let mut session = HttpSession::new(listener.accept().unwrap());
        let mut s = server(Isolation::Domain);

        client.write(EXPLOIT);
        client.write(b"GET / HTTP/1.1\r\nHost: a\r\n\r\n");
        assert_eq!(session.poll(&mut s), 2);
        let text = String::from_utf8(client.read_available()).unwrap();
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        assert!(text.contains("HTTP/1.1 200 OK"), "{text}");
        assert!(s.is_alive());
    }
}
